//! The node scheduler: a flat argmin structure over per-node ready times.
//!
//! The machine is a set of node actors, each with its own clock.  Because
//! the modeled processors block on their single outstanding miss (the
//! paper's sequentially-consistent, one-outstanding-miss configuration),
//! each node's next operation can be resolved synchronously when the node is
//! popped, and global ordering only has to interleave *nodes*, not
//! individual in-flight transactions.  The scheduler pops the node with the
//! smallest clock, executes one operation, and pushes it back with its new
//! clock — giving a deterministic, globally time-ordered interleaving.
//!
//! Ties are broken by node id so runs are reproducible regardless of
//! internals.
//!
//! # Why not a heap
//!
//! The node count is small (≤ 64) and fixed, while pops number in the
//! billions, so the per-op constant dominates asymptotics.  The scheduler
//! keeps a dense `ready[node] -> time` vector (`Cycles::MAX` = not
//! queued) and scans it for the argmin on pop — a handful of
//! branch-predictable compares over one cache line, cheaper than a
//! `BinaryHeap`'s sift with tuple compares.
//!
//! On top of the flat scan sits a *run-to-quiescence* fast path: each
//! full scan also records the runner-up (the lexicographic `(time, id)`
//! minimum over every queued node except the winner).  While the popped
//! node keeps getting re-pushed with times that still beat the runner-up
//! — the common no-contention case, where one node streams through L1
//! hits below every other node's clock — the next pop is a single
//! compare, skipping the rescan entirely.  The runner-up stays exact
//! between scans because nodes only *join* the queue in that window
//! (each push folds into the cached minimum); only a pop removes a node,
//! and the fast path only ever pops the same node again.
//!
//! Entries are stored *packed*: `(time << 16) | id` in one `u64`, so the
//! lexicographic `(time, id)` order is plain integer order and the scan
//! is a branchless two-minimum reduction (min + runner-up via
//! conditional moves, no data-dependent branches to mispredict when
//! nodes run in lock-step).  Times are cycle counts far below `2^48`
//! (debug-asserted), so packing is lossless.

use crate::{Cycles, NodeId};

/// Sentinel key marking a node as not queued.  Real keys are
/// `(time << 16) | id` with `time < 2^48`, so the sentinel cannot
/// collide (debug-asserted on push).
const IDLE: u64 = u64::MAX;

/// Pack `(time, id)` so integer order equals lexicographic order.
#[inline]
fn key(node: u16, time: Cycles) -> u64 {
    debug_assert!(time < 1 << 48, "clock overflows the packed key");
    (time << 16) | node as u64
}

/// Flat min-scheduler over `(ready_time, node)`.
#[derive(Debug)]
pub struct Scheduler {
    /// Per-node packed `(time << 16) | id` key, [`IDLE`] when not queued.
    ready: Vec<u64>,
    /// Number of queued (non-IDLE) nodes.
    live: usize,
    /// Node returned by the last full-scan pop (fast-path candidate).
    last: u16,
    /// Minimum key over queued nodes *other than* `last`, exact as of
    /// the last full scan folded with every push since.  [`IDLE`] when
    /// no other node is queued.
    runner: u64,
    /// Whether `last`/`runner` describe the current queue.
    cached: bool,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self {
            ready: Vec::new(),
            live: 0,
            last: 0,
            runner: IDLE,
            cached: false,
        }
    }
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler with `nodes` nodes all ready at time zero.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            ready: (0..nodes).map(|i| key(i as u16, 0)).collect(),
            live: nodes,
            ..Self::default()
        }
    }

    /// Make `node` runnable at `time`.
    #[inline]
    pub fn push(&mut self, node: NodeId, time: Cycles) {
        let i = node.0 as usize;
        if i >= self.ready.len() {
            self.ready.resize(i + 1, IDLE);
        }
        debug_assert_eq!(self.ready[i], IDLE, "node {node} pushed while queued");
        let k = key(node.0, time);
        self.ready[i] = k;
        self.live += 1;
        // A node joining the queue can only lower the cached runner-up;
        // the re-push of `last` itself is handled by the fast-path
        // compare in `pop`.
        if self.cached && node.0 != self.last && k < self.runner {
            self.runner = k;
        }
    }

    /// Pop the earliest-ready node, ties broken by node id.
    #[inline]
    pub fn pop(&mut self) -> Option<(NodeId, Cycles)> {
        if self.live == 0 {
            return None;
        }
        if self.cached {
            // Fast path: the last-popped node was re-pushed and still
            // beats every other queued node — pop it again without
            // rescanning (the runner-up cache stays exact).
            let k = self.ready[self.last as usize];
            if k < self.runner {
                self.ready[self.last as usize] = IDLE;
                self.live -= 1;
                return Some((NodeId(self.last), k >> 16));
            }
        }
        Some(self.pop_scan())
    }

    /// Full argmin scan: pop the minimum-key node and cache the
    /// runner-up for the fast path.  Packed keys make this a two-min
    /// reduction — per element one min/max pair the compiler lowers to
    /// conditional moves, with idle slots losing naturally as `u64::MAX`
    /// and the winning key carrying its node id in the low bits (no
    /// position bookkeeping).
    fn pop_scan(&mut self) -> (NodeId, Cycles) {
        // Consume slots two at a time: each pair is pre-sorted with one
        // compare, so the serial `best` dependency chain is half as long
        // and the `runner` mins run in parallel with it.
        let mut best = IDLE;
        let mut runner = IDLE;
        let mut pairs = self.ready.chunks_exact(2);
        for p in &mut pairs {
            let (lo, hi) = if p[0] < p[1] {
                (p[0], p[1])
            } else {
                (p[1], p[0])
            };
            let (b, m) = if lo < best { (lo, best) } else { (best, lo) };
            best = b;
            runner = runner.min(m).min(hi);
        }
        for &k in pairs.remainder() {
            let (lo, hi) = if k < best { (k, best) } else { (best, k) };
            best = lo;
            runner = runner.min(hi);
        }
        debug_assert!(best != IDLE, "live count positive but no queued node");
        let id = (best & 0xFFFF) as u16;
        self.ready[id as usize] = IDLE;
        self.live -= 1;
        self.last = id;
        self.runner = runner;
        self.cached = true;
        (NodeId(id), best >> 16)
    }

    /// After popping `node`, report whether re-pushing it at `time` would
    /// make it the very next pop (the fast-path condition).  When true,
    /// the caller may keep executing the node without the push/pop
    /// round-trip: the node stays logically popped and the runner-up
    /// cache — which tracks every *other* queued node — remains exact.
    /// Pushes of other nodes between calls stay safe: each folds into
    /// the runner-up, so a node waking below `time` flips this to false.
    #[inline]
    pub fn requeue_is_next(&self, node: NodeId, time: Cycles) -> bool {
        self.cached && node.0 == self.last && key(node.0, time) < self.runner
    }

    /// Peek at the earliest-ready node without removing it.
    pub fn peek(&self) -> Option<(NodeId, Cycles)> {
        let best = self.ready.iter().copied().min().unwrap_or(IDLE);
        (best != IDLE).then_some((NodeId((best & 0xFFFF) as u16), best >> 16))
    }

    /// Number of runnable nodes currently queued.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no node is runnable (all blocked at a barrier or finished).
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.push(NodeId(0), 30);
        s.push(NodeId(1), 10);
        s.push(NodeId(2), 20);
        assert_eq!(s.pop(), Some((NodeId(1), 10)));
        assert_eq!(s.pop(), Some((NodeId(2), 20)));
        assert_eq!(s.pop(), Some((NodeId(0), 30)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn ties_broken_by_node_id() {
        let mut s = Scheduler::new();
        s.push(NodeId(5), 10);
        s.push(NodeId(2), 10);
        s.push(NodeId(7), 10);
        assert_eq!(s.pop(), Some((NodeId(2), 10)));
        assert_eq!(s.pop(), Some((NodeId(5), 10)));
        assert_eq!(s.pop(), Some((NodeId(7), 10)));
    }

    #[test]
    fn with_nodes_starts_all_at_zero() {
        let mut s = Scheduler::with_nodes(3);
        assert_eq!(s.len(), 3);
        for expect in 0..3u16 {
            assert_eq!(s.pop(), Some((NodeId(expect), 0)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut s = Scheduler::new();
        s.push(NodeId(1), 5);
        assert_eq!(s.peek(), Some((NodeId(1), 5)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reinsertion_interleaves() {
        let mut s = Scheduler::with_nodes(2);
        let (n, t) = s.pop().unwrap();
        assert_eq!((n, t), (NodeId(0), 0));
        s.push(n, 100);
        assert_eq!(s.pop(), Some((NodeId(1), 0)));
        s.push(NodeId(1), 50);
        assert_eq!(s.pop(), Some((NodeId(1), 50)));
        assert_eq!(s.pop(), Some((NodeId(0), 100)));
    }

    #[test]
    fn quiescence_loop_respects_a_waking_node() {
        // Node 0 runs alone (fast path), then a push of node 1 below its
        // next ready time must win the next pop.
        let mut s = Scheduler::new();
        s.push(NodeId(0), 0);
        s.push(NodeId(1), 1000);
        assert_eq!(s.pop(), Some((NodeId(0), 0)));
        s.push(NodeId(0), 10);
        assert_eq!(s.pop(), Some((NodeId(0), 10))); // fast path
        s.push(NodeId(0), 20);
        s.push(NodeId(2), 15); // wakes below node 0's ready time
        assert_eq!(s.pop(), Some((NodeId(2), 15)));
        assert_eq!(s.pop(), Some((NodeId(0), 20)));
        assert_eq!(s.pop(), Some((NodeId(1), 1000)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn fast_path_tie_goes_to_lower_id() {
        // Node 1 re-pushed at exactly the runner-up's (time, id) must
        // lose to the lower-id node 0.
        let mut s = Scheduler::new();
        s.push(NodeId(0), 50);
        s.push(NodeId(1), 10);
        assert_eq!(s.pop(), Some((NodeId(1), 10)));
        s.push(NodeId(1), 50); // ties node 0's time; node 0 wins by id
        assert_eq!(s.pop(), Some((NodeId(0), 50)));
        assert_eq!(s.pop(), Some((NodeId(1), 50)));
    }

    /// Reference implementation: the original `BinaryHeap` scheduler.
    #[derive(Default)]
    struct HeapSched {
        heap: std::collections::BinaryHeap<std::cmp::Reverse<(Cycles, u16)>>,
    }

    impl HeapSched {
        fn push(&mut self, node: NodeId, time: Cycles) {
            self.heap.push(std::cmp::Reverse((time, node.0)));
        }
        fn pop(&mut self) -> Option<(NodeId, Cycles)> {
            self.heap
                .pop()
                .map(|std::cmp::Reverse((t, n))| (NodeId(n), t))
        }
    }

    /// Property test (vendored `SimRng`): across randomized push/pop
    /// sequences — duplicate times, re-pushes after pops, interleaved
    /// wake-ups — the flat scheduler's pop order is identical to the
    /// old `BinaryHeap` semantics (min clock, ties by node id).
    #[test]
    fn pop_order_matches_binary_heap_reference() {
        use crate::rng::SimRng;
        for seed in 0..64u64 {
            let mut rng = SimRng::seed_from(0x5C4E_D000 ^ seed);
            let nodes = rng.range(1, 9) as usize;
            let mut flat = Scheduler::with_nodes(nodes);
            let mut heap = HeapSched::default();
            // Mirror of queue membership so re-pushes stay legal (a node
            // is pushed only while popped, as in the machine).
            let mut queued = vec![true; nodes];
            let mut clock = vec![0u64; nodes];
            for n in 0..nodes {
                heap.push(NodeId(n as u16), 0);
            }
            let mut popped: Vec<usize> = Vec::new();
            for _ in 0..2000 {
                if !popped.is_empty() && rng.chance(0.6) {
                    // Re-push a previously popped node; duplicate times
                    // arise because advances are often zero.
                    let i = rng.below(popped.len() as u64) as usize;
                    let n = popped.swap_remove(i);
                    let advance = [0, 0, 1, 7][rng.below(4) as usize];
                    clock[n] += advance;
                    flat.push(NodeId(n as u16), clock[n]);
                    heap.push(NodeId(n as u16), clock[n]);
                    queued[n] = true;
                } else {
                    let f = flat.pop();
                    let h = heap.pop();
                    assert_eq!(f, h, "divergence at seed {seed}");
                    if let Some((n, t)) = f {
                        assert!(queued[n.idx()]);
                        queued[n.idx()] = false;
                        clock[n.idx()] = t;
                        popped.push(n.idx());
                    }
                }
            }
            // Drain: orders must agree to the end.
            loop {
                let f = flat.pop();
                let h = heap.pop();
                assert_eq!(f, h, "drain divergence at seed {seed}");
                if f.is_none() {
                    break;
                }
            }
        }
    }
}
