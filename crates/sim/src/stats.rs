//! Statistics: the execution-time and miss-location breakdowns of the paper.
//!
//! The paper's Figures 2 and 3 stack two breakdowns per (architecture,
//! memory-pressure) point:
//!
//! * **Left column** — relative execution time split into `U-SH-MEM` (stalled
//!   on shared memory), `K-BASE` (essential kernel work common to all
//!   architectures), `K-OVERHD` (architecture-specific kernel work: page
//!   remapping, relocation interrupts, pageout-daemon runs), `U-INSTR`
//!   (user instructions), `U-LC-MEM` (non-shared memory stalls) and `SYNC`
//!   (synchronization waits).
//! * **Right column** — where cache misses to shared data were satisfied:
//!   `HOME` (local DRAM because the node is the home), `SCOMA` (the local
//!   page cache), `RAC` (the remote access cache), `COLD` (cold misses
//!   satisfied remotely, both essential and remapping-induced) and
//!   `CONF/CAPC` (conflict/capacity misses that went remote).
//!
//! [`ExecBreakdown`] and [`MissBreakdown`] are those two stacks.  We keep
//! induced cold misses and coherence misses as separate internal counters so
//! the analysis chapters can report them, and fold them into `COLD` and
//! `CONF/CAPC` respectively when rendering the paper's charts.

use crate::Cycles;

/// Execution-time breakdown (the paper's left-column stack), in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecBreakdown {
    /// Cycles stalled on shared-memory accesses (`U-SH-MEM`).
    pub u_sh_mem: Cycles,
    /// Essential kernel cycles required by all architectures (`K-BASE`):
    /// first-touch page faults, TLB fills, base VM bookkeeping.
    pub k_base: Cycles,
    /// Architecture-specific kernel cycles (`K-OVERHD`): relocation
    /// interrupts, cache flushes, page remapping, pageout-daemon execution
    /// and the context switches it induces.
    pub k_overhd: Cycles,
    /// User instruction cycles (`U-INSTR`).
    pub u_instr: Cycles,
    /// Cycles stalled on non-shared (node-private) memory (`U-LC-MEM`).
    pub u_lc_mem: Cycles,
    /// Cycles spent waiting at synchronization operations (`SYNC`).
    pub sync: Cycles,
}

impl ExecBreakdown {
    /// Total cycles across all categories.
    pub fn total(&self) -> Cycles {
        self.u_sh_mem + self.k_base + self.k_overhd + self.u_instr + self.u_lc_mem + self.sync
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &ExecBreakdown) {
        self.u_sh_mem += other.u_sh_mem;
        self.k_base += other.k_base;
        self.k_overhd += other.k_overhd;
        self.u_instr += other.u_instr;
        self.u_lc_mem += other.u_lc_mem;
        self.sync += other.sync;
    }

    /// Each category as a fraction of `denom` (usually another run's total,
    /// for the paper's "relative to CC-NUMA" normalization).
    pub fn normalized(&self, denom: Cycles) -> [f64; 6] {
        let d = denom.max(1) as f64;
        [
            self.u_sh_mem as f64 / d,
            self.k_base as f64 / d,
            self.k_overhd as f64 / d,
            self.u_instr as f64 / d,
            self.u_lc_mem as f64 / d,
            self.sync as f64 / d,
        ]
    }

    /// Category labels in the order produced by [`Self::normalized`].
    pub const LABELS: [&'static str; 6] = [
        "U-SH-MEM", "K-BASE", "K-OVERHD", "U-INSTR", "U-LC-MEM", "SYNC",
    ];
}

/// Where shared-data cache misses were satisfied (the right-column stack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissBreakdown {
    /// Satisfied from local DRAM because this node is the page's home.
    pub home: u64,
    /// Satisfied from the local S-COMA page cache.
    pub scoma: u64,
    /// Satisfied from the remote access cache.
    pub rac: u64,
    /// Essential cold misses: the first fetch of a block by a node, ever.
    pub cold_essential: u64,
    /// Induced cold misses: re-fetches forced by a remap/downgrade flush.
    pub cold_induced: u64,
    /// Conflict/capacity misses satisfied by a remote node (refetches).
    pub conf_capc: u64,
    /// Coherence misses (invalidation-induced re-fetches), reported inside
    /// `CONF/CAPC` when rendering the paper's charts.
    pub coherence: u64,
}

impl MissBreakdown {
    /// Total shared-data misses that reached beyond the L1.
    pub fn total(&self) -> u64 {
        self.home
            + self.scoma
            + self.rac
            + self.cold_essential
            + self.cold_induced
            + self.conf_capc
            + self.coherence
    }

    /// `COLD` as the paper charts it (essential + induced).
    pub fn cold(&self) -> u64 {
        self.cold_essential + self.cold_induced
    }

    /// `CONF/CAPC` as the paper charts it (including coherence re-fetches).
    pub fn conf_capc_chart(&self) -> u64 {
        self.conf_capc + self.coherence
    }

    /// Misses that were satisfied without leaving the node.
    pub fn local(&self) -> u64 {
        self.home + self.scoma + self.rac
    }

    /// Misses that required a remote transaction.
    pub fn remote(&self) -> u64 {
        self.cold() + self.conf_capc_chart()
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &MissBreakdown) {
        self.home += other.home;
        self.scoma += other.scoma;
        self.rac += other.rac;
        self.cold_essential += other.cold_essential;
        self.cold_induced += other.cold_induced;
        self.conf_capc += other.conf_capc;
        self.coherence += other.coherence;
    }

    /// The five chart buckets `[HOME, SCOMA, RAC, COLD, CONF/CAPC]`.
    pub fn chart(&self) -> [u64; 5] {
        [
            self.home,
            self.scoma,
            self.rac,
            self.cold(),
            self.conf_capc_chart(),
        ]
    }

    /// Labels for [`Self::chart`].
    pub const LABELS: [&'static str; 5] = ["HOME", "SCOMA", "RAC", "COLD", "CONF/CAPC"];
}

/// Stall-cycle totals by miss-service location, the companion of
/// [`MissBreakdown`]: dividing the two gives the *measured average
/// latency* per location, the quantity behind the paper's Table 1 cost
/// terms (`T_pagecache`, `T_remote`) under real contention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissLatency {
    /// Cycles stalled on home-local DRAM misses.
    pub home_cycles: Cycles,
    /// Cycles stalled on S-COMA page-cache hits.
    pub scoma_cycles: Cycles,
    /// Cycles stalled on RAC hits.
    pub rac_cycles: Cycles,
    /// Cycles stalled on remote fetches (all remote classes).
    pub remote_cycles: Cycles,
}

impl MissLatency {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &MissLatency) {
        self.home_cycles += other.home_cycles;
        self.scoma_cycles += other.scoma_cycles;
        self.rac_cycles += other.rac_cycles;
        self.remote_cycles += other.remote_cycles;
    }

    /// Average latencies `[home, scoma, rac, remote]` given the
    /// corresponding miss counts (0 counts give 0).
    pub fn averages(&self, miss: &MissBreakdown) -> [f64; 4] {
        let avg = |c: Cycles, n: u64| if n == 0 { 0.0 } else { c as f64 / n as f64 };
        [
            avg(self.home_cycles, miss.home),
            avg(self.scoma_cycles, miss.scoma),
            avg(self.rac_cycles, miss.rac),
            avg(self.remote_cycles, miss.remote()),
        ]
    }
}

/// Kernel / VM activity counters for one run (per node or aggregated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// First-touch page faults (mapping creation; charged to `K-BASE`).
    pub page_faults: u64,
    /// CC-NUMA → S-COMA upgrades performed.
    pub upgrades: u64,
    /// S-COMA → CC-NUMA downgrades (victim evictions).
    pub downgrades: u64,
    /// Relocation interrupts taken.
    pub relocation_interrupts: u64,
    /// Pageout-daemon invocations.
    pub daemon_runs: u64,
    /// Pageout-daemon invocations that failed to reach `free_target`
    /// (the AS-COMA thrashing signal).
    pub daemon_failures: u64,
    /// Pages reclaimed by the daemon.
    pub pages_reclaimed: u64,
    /// Cache blocks flushed during remapping (sources of induced cold misses).
    pub blocks_flushed: u64,
    /// Times a policy raised its refetch threshold (back-off events).
    pub threshold_raises: u64,
    /// Times a policy lowered its refetch threshold (recovery events).
    pub threshold_drops: u64,
    /// Lock acquisitions performed.
    pub lock_acquires: u64,
    /// Lock acquisitions that had to wait for another holder.
    pub lock_contended: u64,
    /// Read-only page replications created (replication extension).
    pub replications: u64,
    /// Replicas collapsed by a first write (replication extension).
    pub replica_collapses: u64,
}

impl KernelStats {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &KernelStats) {
        self.page_faults += other.page_faults;
        self.upgrades += other.upgrades;
        self.downgrades += other.downgrades;
        self.relocation_interrupts += other.relocation_interrupts;
        self.daemon_runs += other.daemon_runs;
        self.daemon_failures += other.daemon_failures;
        self.pages_reclaimed += other.pages_reclaimed;
        self.blocks_flushed += other.blocks_flushed;
        self.threshold_raises += other.threshold_raises;
        self.threshold_drops += other.threshold_drops;
        self.lock_acquires += other.lock_acquires;
        self.lock_contended += other.lock_contended;
        self.replications += other.replications;
        self.replica_collapses += other.replica_collapses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_total_and_add() {
        let a = ExecBreakdown {
            u_sh_mem: 1,
            k_base: 2,
            k_overhd: 3,
            u_instr: 4,
            u_lc_mem: 5,
            sync: 6,
        };
        assert_eq!(a.total(), 21);
        let mut b = a;
        b.add(&a);
        assert_eq!(b.total(), 42);
    }

    #[test]
    fn exec_normalized_sums_to_ratio() {
        let a = ExecBreakdown {
            u_sh_mem: 10,
            k_base: 20,
            k_overhd: 30,
            u_instr: 40,
            u_lc_mem: 0,
            sync: 0,
        };
        let n = a.normalized(200);
        let sum: f64 = n.iter().sum();
        assert!((sum - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exec_normalized_zero_denominator_is_safe() {
        let a = ExecBreakdown::default();
        let n = a.normalized(0);
        assert!(n.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn miss_chart_folds_induced_and_coherence() {
        let m = MissBreakdown {
            home: 1,
            scoma: 2,
            rac: 3,
            cold_essential: 4,
            cold_induced: 5,
            conf_capc: 6,
            coherence: 7,
        };
        assert_eq!(m.chart(), [1, 2, 3, 9, 13]);
        assert_eq!(m.total(), 28);
        assert_eq!(m.local(), 6);
        assert_eq!(m.remote(), 22);
    }

    #[test]
    fn kernel_stats_accumulate() {
        let a = KernelStats {
            page_faults: 1,
            upgrades: 2,
            downgrades: 3,
            relocation_interrupts: 4,
            daemon_runs: 5,
            daemon_failures: 6,
            pages_reclaimed: 7,
            blocks_flushed: 8,
            threshold_raises: 9,
            threshold_drops: 10,
            lock_acquires: 11,
            lock_contended: 12,
            replications: 13,
            replica_collapses: 14,
        };
        let mut b = KernelStats::default();
        b.add(&a);
        b.add(&a);
        assert_eq!(b.page_faults, 2);
        assert_eq!(b.threshold_drops, 20);
    }
}
