//! The AS-COMA threshold back-off automaton.
//!
//! AS-COMA "dynamically backs off the rate of page remappings" when the
//! pageout daemon fails to refill the free pool: each failed run raises
//! the relocation threshold, latches NUMA-first allocation, and slows
//! the daemon; a successful run at an elevated threshold recovers one
//! step.  The automaton lives here — below the policy layer — so the
//! conformance checker (`ascoma-check`) can drive the *production*
//! transition function without depending on the core crate.  The
//! architecture gate (only AS-COMA consults the daemon) stays in
//! `ascoma::policy`, which delegates to this state machine.

use ascoma_sim::Cycles;

/// Constants of the back-off automaton (a subset of the core crate's
/// `PolicyParams`, restated here so the automaton is self-contained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffParams {
    /// Starting (and floor) relocation threshold.
    pub initial_threshold: u32,
    /// Step applied per raise/drop.
    pub increment: u32,
    /// Threshold above which relocation is disabled entirely.
    pub cap: u32,
    /// False = ablated: the automaton never moves (`ascoma_backoff`).
    pub enabled: bool,
}

/// One node's back-off state: the current threshold plus the two
/// latches the paper describes (NUMA-first allocation, relocation
/// disabled past the cap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffState {
    params: BackoffParams,
    threshold: u32,
    numa_first: bool,
    relocation_disabled: bool,
    raises: u64,
    drops: u64,
}

impl BackoffState {
    /// Fresh automaton at the initial threshold, nothing latched.
    pub fn new(params: BackoffParams) -> Self {
        Self {
            params,
            threshold: params.initial_threshold,
            numa_first: false,
            relocation_disabled: false,
            raises: 0,
            drops: 0,
        }
    }

    /// The automaton's constants.
    pub fn params(&self) -> BackoffParams {
        self.params
    }

    /// Current relocation threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Whether relocation is fully disabled (threshold passed the cap).
    pub fn relocation_disabled(&self) -> bool {
        self.relocation_disabled
    }

    /// NUMA-first allocation latch.
    pub fn numa_first(&self) -> bool {
        self.numa_first
    }

    /// (raises, drops) statistics.
    pub fn stats(&self) -> (u64, u64) {
        (self.raises, self.drops)
    }

    /// Retarget the per-step increment at run time (the auto-tuner's
    /// knob).  Only the step size changes: the current threshold, the
    /// latches and the statistics are left untouched, so a tune between
    /// two daemon runs never rewrites history — it only changes how far
    /// the *next* raise or drop moves.  A zero increment is clamped to 1
    /// so the automaton can always make progress.
    pub fn set_increment(&mut self, increment: u32) {
        self.params.increment = increment.max(1);
    }

    /// Notify that a daemon run finished.  `reached_target` false =
    /// thrashing detected -> raise the threshold, latch NUMA-first and
    /// slow the daemon.  Success at an elevated threshold = cold pages
    /// exist again -> recover one step.
    pub fn on_daemon_result(&mut self, reached_target: bool) -> DaemonAdjust {
        if !self.params.enabled {
            return DaemonAdjust::Keep;
        }
        if !reached_target {
            self.raises += 1;
            self.numa_first = true;
            self.threshold = self.threshold.saturating_add(self.params.increment);
            if self.threshold > self.params.cap {
                self.relocation_disabled = true;
            }
            DaemonAdjust::Slow
        } else {
            let mut adj = DaemonAdjust::Keep;
            if self.threshold > self.params.initial_threshold {
                self.drops += 1;
                self.threshold = self
                    .threshold
                    .saturating_sub(self.params.increment)
                    .max(self.params.initial_threshold);
                if self.threshold <= self.params.cap {
                    self.relocation_disabled = false;
                }
                adj = DaemonAdjust::Hasten;
            }
            self.numa_first = false;
            adj
        }
    }

    /// Raise the threshold one step without touching the latches
    /// (VC-NUMA's break-even indicator fired low).
    pub fn raise(&mut self) {
        self.raises += 1;
        self.threshold = self.threshold.saturating_add(self.params.increment);
    }

    /// Lower the threshold one step toward the initial value, without
    /// touching the latches (VC-NUMA recovery).
    pub fn lower(&mut self) {
        self.drops += 1;
        self.threshold = self
            .threshold
            .saturating_sub(self.params.increment)
            .max(self.params.initial_threshold);
    }
}

/// Daemon-period adjustment requested by the automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonAdjust {
    /// Keep the current period.
    Keep,
    /// Double the period (back-off).
    Slow,
    /// Halve the period toward its initial value (recovery).
    Hasten,
}

/// Apply a [`DaemonAdjust`] to a period, clamped to `[initial, 64 * initial]`.
pub fn adjust_period(period: Cycles, adj: DaemonAdjust, initial: Cycles) -> Cycles {
    match adj {
        DaemonAdjust::Keep => period,
        DaemonAdjust::Slow => (period * 2).min(initial * 64),
        DaemonAdjust::Hasten => (period / 2).max(initial),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BackoffParams {
        BackoffParams {
            initial_threshold: 64,
            increment: 32,
            cap: 1024,
            enabled: true,
        }
    }

    #[test]
    fn failure_raises_and_latches() {
        let mut b = BackoffState::new(params());
        assert_eq!(b.on_daemon_result(false), DaemonAdjust::Slow);
        assert_eq!(b.threshold(), 96);
        assert!(b.numa_first());
        assert_eq!(b.stats(), (1, 0));
    }

    #[test]
    fn recovery_floors_at_initial() {
        let mut b = BackoffState::new(params());
        b.on_daemon_result(false);
        b.on_daemon_result(false);
        assert_eq!(b.on_daemon_result(true), DaemonAdjust::Hasten);
        assert_eq!(b.threshold(), 96);
        b.on_daemon_result(true);
        assert_eq!(b.on_daemon_result(true), DaemonAdjust::Keep);
        assert_eq!(b.threshold(), 64);
    }

    #[test]
    fn cap_latch_and_unlatch() {
        let small = BackoffParams {
            initial_threshold: 1,
            increment: 1,
            cap: 2,
            enabled: true,
        };
        let mut b = BackoffState::new(small);
        b.on_daemon_result(false);
        assert!(!b.relocation_disabled());
        b.on_daemon_result(false);
        assert!(b.relocation_disabled());
        b.on_daemon_result(true);
        assert!(!b.relocation_disabled());
    }

    #[test]
    fn set_increment_changes_only_future_steps() {
        let mut b = BackoffState::new(params());
        b.on_daemon_result(false);
        assert_eq!(b.threshold(), 96);
        b.set_increment(8);
        assert_eq!(b.threshold(), 96, "tune must not rewrite the threshold");
        b.on_daemon_result(false);
        assert_eq!(b.threshold(), 104);
        b.on_daemon_result(true);
        assert_eq!(b.threshold(), 96);
        b.set_increment(0);
        assert_eq!(b.params().increment, 1, "zero increment clamps to 1");
    }

    #[test]
    fn disabled_automaton_is_inert() {
        let mut b = BackoffState::new(BackoffParams {
            enabled: false,
            ..params()
        });
        assert_eq!(b.on_daemon_result(false), DaemonAdjust::Keep);
        assert_eq!(b.threshold(), 64);
        assert!(!b.numa_first());
    }
}
