//! The kernel cost model: cycle charges for VM operations.
//!
//! The paper's central finding is that "the effect of [software overhead]
//! can be dramatic" — the `K-OVERHD` component of the execution-time
//! breakdown is what sinks R-NUMA and VC-NUMA at high memory pressure.
//! These constants are the per-operation charges; DESIGN.md §4 records the
//! calibration of the OCR-degraded values ("our interrupt and relocation
//! operations are highly optimized, requiring only ~#### and ~#### cycles,
//! respectively").
//!
//! Charges fall into two buckets matching the paper's stacks:
//!
//! * `K-BASE` — work every architecture does: first-touch page faults.
//! * `K-OVERHD` — architecture-specific work: relocation interrupts,
//!   flushes, remaps, and pageout-daemon execution (context switches and
//!   per-page scanning).

use ascoma_sim::Cycles;

/// Cycle costs of kernel operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCosts {
    /// First-touch page fault: establish a mapping (any mode). `K-BASE`.
    pub page_fault: Cycles,
    /// Software TLB fill (the modeled PA-RISC fills its TLB in a kernel
    /// handler). `K-BASE`.
    pub tlb_fill: Cycles,
    /// Relocation interrupt delivery + handler entry/exit (`K-OVERHD`).
    pub relocation_interrupt: Cycles,
    /// Page remap: page-table + DSM-engine update, TLB shootdown of one
    /// entry (`K-OVERHD`).
    pub remap: Cycles,
    /// Flushing one valid DSM block from the processor cache(s) during a
    /// remap (`K-OVERHD`); total flush cost scales with residency.
    pub flush_per_block: Cycles,
    /// Context switch to/from the pageout daemon (charged once per daemon
    /// run; `K-OVERHD`).
    pub daemon_context_switch: Cycles,
    /// Pageout daemon work per page examined (`K-OVERHD`).
    pub daemon_per_page: Cycles,
    /// Minimum cycles between pageout-daemon invocations (the daemon's
    /// initial period; AS-COMA's back-off doubles it under thrash).
    pub daemon_period: Cycles,
    /// Barrier entry/exit cost charged to every participant.
    pub barrier_cost: Cycles,
}

impl Default for KernelCosts {
    fn default() -> Self {
        Self {
            page_fault: 500,
            tlb_fill: 36,
            relocation_interrupt: 1500,
            remap: 2500,
            flush_per_block: 48,
            daemon_context_switch: 800,
            daemon_per_page: 120,
            daemon_period: 1_000_000,
            barrier_cost: 100,
        }
    }
}

impl KernelCosts {
    /// Total `K-OVERHD` charge for relocating one page that had
    /// `valid_blocks` blocks cached: interrupt + flush + remap.
    pub fn relocation_cost(&self, valid_blocks: u32) -> Cycles {
        self.relocation_interrupt + self.flush_per_block * valid_blocks as Cycles + self.remap
    }

    /// Total `K-OVERHD` charge for one daemon run that examined
    /// `examined` pages.
    pub fn daemon_cost(&self, examined: u32) -> Cycles {
        self.daemon_context_switch + self.daemon_per_page * examined as Cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relocation_cost_scales_with_residency() {
        let c = KernelCosts::default();
        let empty = c.relocation_cost(0);
        let full = c.relocation_cost(32);
        assert_eq!(empty, 4000);
        assert_eq!(full, empty + 32 * 48);
    }

    #[test]
    fn daemon_cost_scales_with_examined() {
        let c = KernelCosts::default();
        assert_eq!(c.daemon_cost(0), 800);
        assert_eq!(c.daemon_cost(10), 800 + 1200);
    }

    #[test]
    fn defaults_match_design_calibration() {
        let c = KernelCosts::default();
        // Interrupt and relocation in the paper are 4-digit cycle counts.
        assert!((1000..10_000).contains(&c.relocation_interrupt));
        assert!((1000..10_000).contains(&c.remap));
    }
}
