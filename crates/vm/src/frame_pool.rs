//! The free-frame pool of a node.
//!
//! "The kernel maintains a pool of free local pages that it can use to
//! satisfy allocation or relocation requests.  The pageout daemon attempts
//! to keep the size of this pool between `free_target` and `free_min`
//! pages."  Memory pressure (the paper's central experimental variable) is
//! the fraction of a node's frames consumed by home pages; the remainder —
//! this pool — is what S-COMA and the hybrids use as a page cache.

/// A node's physical frame pool.
#[derive(Debug, Clone)]
pub struct FramePool {
    total_frames: u32,
    home_frames: u32,
    free: Vec<u32>,
    free_min: u32,
    free_target: u32,
    allocs: u64,
    low_watermark: u32,
    /// Seeded fault: `release` drops the frame on the floor.  Checker
    /// self-test builds only.
    #[cfg(feature = "check")]
    fault_leak_release: bool,
    /// Seeded fault: `rejoin_reconcile` rebuilds the free list one frame
    /// short.  Checker self-test builds only.
    #[cfg(feature = "check")]
    fault_rejoin_short: bool,
}

impl FramePool {
    /// A pool over `total_frames`, of which `home_frames` are permanently
    /// consumed by home pages (and the kernel).  `free_min` and
    /// `free_target` are the daemon's low/high water marks, in frames.
    pub fn new(total_frames: u32, home_frames: u32, free_min: u32, free_target: u32) -> Self {
        assert!(home_frames <= total_frames);
        assert!(free_min <= free_target);
        let free: Vec<u32> = (home_frames..total_frames).rev().collect();
        let low_watermark = free.len() as u32;
        Self {
            total_frames,
            home_frames,
            free,
            free_min,
            free_target,
            allocs: 0,
            low_watermark,
            #[cfg(feature = "check")]
            fault_leak_release: false,
            #[cfg(feature = "check")]
            fault_rejoin_short: false,
        }
    }

    /// Arm the leak-on-release fault.  Checker self-test builds only.
    #[cfg(feature = "check")]
    pub fn inject_leak_release(&mut self, armed: bool) {
        self.fault_leak_release = armed;
    }

    /// Arm the rejoin-short-pool fault: [`FramePool::rejoin_reconcile`]
    /// rebuilds the free list one frame short, permanently shrinking the
    /// node's page cache.  Checker self-test builds only.
    #[cfg(feature = "check")]
    pub fn inject_rejoin_short(&mut self, armed: bool) {
        self.fault_rejoin_short = armed;
    }

    /// Build from a memory pressure: a node holding `home_pages` home pages
    /// at `pressure` (0 < pressure <= 1) has `home_pages / pressure` total
    /// frames.  Water marks are fractions of total frames.
    pub fn from_pressure(
        home_pages: u32,
        pressure: f64,
        free_min_frac: f64,
        free_target_frac: f64,
    ) -> Self {
        assert!(pressure > 0.0 && pressure <= 1.0, "pressure in (0, 1]");
        let total = ((home_pages as f64 / pressure).round() as u32).max(home_pages);
        let free_min = ((total as f64 * free_min_frac).round() as u32).max(1);
        let free_target = ((total as f64 * free_target_frac).round() as u32).max(free_min);
        Self::new(total, home_pages, free_min, free_target)
    }

    /// Take a frame, if any are free.
    pub fn alloc(&mut self) -> Option<u32> {
        let f = self.free.pop();
        if f.is_some() {
            self.allocs += 1;
            self.low_watermark = self.low_watermark.min(self.free.len() as u32);
        }
        f
    }

    /// Return a frame to the pool.
    ///
    /// Out-of-range and double frees are caught in debug builds and in
    /// `check`-feature builds (the double-free scan is O(free), which is
    /// why it is not unconditional).
    pub fn release(&mut self, frame: u32) {
        // Seeded fault: the frame silently never returns to the pool —
        // no assertion here can see it; only machine-wide frame
        // conservation (free + resident == cache frames) catches it.
        #[cfg(feature = "check")]
        if self.fault_leak_release {
            return;
        }
        #[cfg(any(debug_assertions, feature = "check"))]
        {
            assert!(
                frame >= self.home_frames && frame < self.total_frames,
                "released frame {frame} out of page-cache range"
            );
            assert!(!self.free.contains(&frame), "double free of frame {frame}");
        }
        self.free.push(frame);
    }

    /// Reconcile the pool after a crash: whatever the node's page cache
    /// held died with it, so every page-cache frame returns to the free
    /// list (home frames stay consumed — the node still serves its home
    /// pages after rejoin).  Lifetime statistics (`allocs`,
    /// `low_watermark`) survive; they describe the simulation run, not
    /// the incarnation.
    pub fn rejoin_reconcile(&mut self) {
        self.free.clear();
        self.free
            .extend((self.home_frames..self.total_frames).rev());
        // Seeded fault: the reconciliation walk under-counts by one frame
        // — locally invisible (the short list still validates), caught
        // only by machine-wide frame conservation.
        #[cfg(feature = "check")]
        if self.fault_rejoin_short {
            self.free.pop();
        }
    }

    /// Frames currently free.
    pub fn free_count(&self) -> u32 {
        self.free.len() as u32
    }

    /// True if the pool has fallen below `free_min` (daemon trigger).
    pub fn below_min(&self) -> bool {
        self.free_count() < self.free_min
    }

    /// Frames the daemon must reclaim to reach `free_target` (0 if at or
    /// above target).
    pub fn deficit(&self) -> u32 {
        self.free_target.saturating_sub(self.free_count())
    }

    /// Total frames on the node.
    pub fn total_frames(&self) -> u32 {
        self.total_frames
    }

    /// Frames consumed by home pages.
    pub fn home_frames(&self) -> u32 {
        self.home_frames
    }

    /// Frames available to the page cache in total (free + S-COMA resident).
    pub fn cache_frames(&self) -> u32 {
        self.total_frames - self.home_frames
    }

    /// The daemon's low water mark.
    pub fn free_min(&self) -> u32 {
        self.free_min
    }

    /// The daemon's high water mark.
    pub fn free_target(&self) -> u32 {
        self.free_target
    }

    /// Actual memory pressure: home frames / total frames.
    pub fn pressure(&self) -> f64 {
        self.home_frames as f64 / self.total_frames as f64
    }

    /// Successful allocations over the pool's lifetime.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// The lowest free count ever observed (how deep the pool drained).
    pub fn low_watermark(&self) -> u32 {
        self.low_watermark
    }

    /// The free list itself (invariant checking / inspection).
    pub fn free_frames(&self) -> &[u32] {
        &self.free
    }

    /// Structural self-check: every free frame is in the page-cache range
    /// and listed exactly once, and the list never exceeds the page-cache
    /// partition.  `O(free log free)` — for barrier-time and test probes.
    pub fn validate(&self) -> Result<(), String> {
        if self.free.len() as u32 > self.cache_frames() {
            return Err(format!(
                "{} free frames exceed the {}-frame page cache",
                self.free.len(),
                self.cache_frames()
            ));
        }
        let mut sorted = self.free.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(format!("frame {} on the free list twice", w[0]));
            }
        }
        if let (Some(&lo), Some(&hi)) = (sorted.first(), sorted.last()) {
            if lo < self.home_frames || hi >= self.total_frames {
                return Err(format!(
                    "free list spans [{lo}, {hi}] outside the page-cache range [{}, {})",
                    self.home_frames, self.total_frames
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_empty() {
        let mut p = FramePool::new(10, 6, 1, 2);
        assert_eq!(p.free_count(), 4);
        let mut got = Vec::new();
        while let Some(f) = p.alloc() {
            got.push(f);
        }
        assert_eq!(got.len(), 4);
        // All frames are in the page-cache range.
        assert!(got.iter().all(|&f| (6..10).contains(&f)));
        assert_eq!(p.free_count(), 0);
    }

    #[test]
    fn release_returns_frames() {
        let mut p = FramePool::new(10, 6, 1, 2);
        let f = p.alloc().unwrap();
        p.release(f);
        assert_eq!(p.free_count(), 4);
    }

    #[test]
    fn watermarks() {
        let mut p = FramePool::new(20, 10, 3, 6);
        assert!(!p.below_min());
        assert_eq!(p.deficit(), 0);
        for _ in 0..8 {
            p.alloc();
        }
        assert_eq!(p.free_count(), 2);
        assert!(p.below_min());
        assert_eq!(p.deficit(), 4);
    }

    #[test]
    fn alloc_counters_and_low_watermark() {
        let mut p = FramePool::new(10, 6, 1, 2);
        assert_eq!(p.low_watermark(), 4);
        p.alloc();
        p.alloc();
        assert_eq!(p.allocs(), 2);
        assert_eq!(p.low_watermark(), 2);
        let f = p.alloc().unwrap();
        p.release(f);
        // The watermark records the deepest drain, not the current level.
        assert_eq!(p.low_watermark(), 1);
        assert_eq!(p.free_count(), 2);
    }

    #[test]
    fn rejoin_reconcile_restores_the_full_page_cache() {
        let mut p = FramePool::new(10, 6, 1, 2);
        p.alloc();
        p.alloc();
        assert_eq!(p.free_count(), 2);
        p.rejoin_reconcile();
        assert_eq!(p.free_count(), 4, "crashed residents' frames come back");
        assert_eq!(p.allocs(), 2, "lifetime statistics survive");
        p.validate().expect("reconciled pool is well-formed");
        // Alloc/release cycles work normally afterwards.
        let f = p.alloc().expect("frame available");
        p.release(f);
        assert_eq!(p.free_count(), 4);
    }

    #[cfg(feature = "check")]
    #[test]
    fn rejoin_short_fault_shrinks_pool_but_validates_locally() {
        let mut p = FramePool::new(10, 6, 1, 2);
        p.inject_rejoin_short(true);
        p.rejoin_reconcile();
        assert_eq!(p.free_count(), 3, "one frame lost in reconciliation");
        p.validate()
            .expect("short pool passes local validation — only machine-wide conservation sees it");
    }

    #[test]
    fn from_pressure_sizes_total() {
        // 100 home pages at 50% pressure -> 200 frames, 100 free.
        let p = FramePool::from_pressure(100, 0.5, 0.02, 0.07);
        assert_eq!(p.total_frames(), 200);
        assert_eq!(p.free_count(), 100);
        assert_eq!(p.free_min(), 4);
        assert_eq!(p.free_target(), 14);
        assert!((p.pressure() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn from_pressure_high_pressure_leaves_little() {
        let p = FramePool::from_pressure(90, 0.9, 0.02, 0.07);
        assert_eq!(p.total_frames(), 100);
        assert_eq!(p.cache_frames(), 10);
    }

    #[test]
    fn pressure_one_hundred_percent_is_legal() {
        let p = FramePool::from_pressure(50, 1.0, 0.02, 0.07);
        assert_eq!(p.cache_frames(), 0);
        assert!(p.below_min());
    }

    #[test]
    #[should_panic(expected = "pressure in (0, 1]")]
    fn from_pressure_rejects_zero() {
        let _ = FramePool::from_pressure(10, 0.0, 0.02, 0.07);
    }
}
