//! Home-page placement: first-touch with a per-node cap.
//!
//! "We extended the first touch allocation algorithm to distribute home
//! pages equally to nodes by limiting the number of home pages that are
//! allocated at each node to a proportional share of the total number of
//! pages.  Once this limit is reached, remaining pages are allocated in a
//! round robin fashion to nodes that have not reached the limit."

use ascoma_sim::NodeId;

/// Assign a home node to every shared page.
///
/// `first_touch[p]` is the node that first touches page `p` (known from
/// the workload's initialization phase).  Each node's share is capped at
/// `ceil(pages / nodes)`; overflow pages go round-robin to under-cap nodes.
pub fn assign_homes(first_touch: &[NodeId], nodes: usize) -> Vec<NodeId> {
    assert!(nodes >= 1);
    let pages = first_touch.len();
    let cap = pages.div_ceil(nodes);
    let mut count = vec![0usize; nodes];
    let mut homes = vec![NodeId(0); pages];
    let mut overflow = Vec::new();

    for (p, &toucher) in first_touch.iter().enumerate() {
        let t = toucher.idx();
        assert!(t < nodes, "first toucher {toucher} out of range");
        if count[t] < cap {
            count[t] += 1;
            homes[p] = toucher;
        } else {
            overflow.push(p);
        }
    }

    // Round-robin the overflow over nodes still under the cap.
    let mut rr = 0usize;
    for p in overflow {
        // Find the next node with spare capacity; guaranteed to exist
        // because sum(cap) >= pages.
        loop {
            let n = rr % nodes;
            rr += 1;
            if count[n] < cap {
                count[n] += 1;
                homes[p] = NodeId(n as u16);
                break;
            }
        }
    }
    homes
}

/// Number of pages homed at each node under `homes`.
pub fn home_counts(homes: &[NodeId], nodes: usize) -> Vec<usize> {
    let mut c = vec![0usize; nodes];
    for h in homes {
        c[h.idx()] += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn balanced_first_touch_is_respected() {
        let ft = vec![n(0), n(1), n(0), n(1)];
        let homes = assign_homes(&ft, 2);
        assert_eq!(homes, ft);
    }

    #[test]
    fn cap_limits_greedy_toucher() {
        // Node 0 touches everything; cap = 4/2 = 2.
        let ft = vec![n(0); 4];
        let homes = assign_homes(&ft, 2);
        let counts = home_counts(&homes, 2);
        assert_eq!(counts, vec![2, 2]);
        // First two pages stay with their toucher.
        assert_eq!(homes[0], n(0));
        assert_eq!(homes[1], n(0));
    }

    #[test]
    fn overflow_round_robins_across_under_cap_nodes() {
        // 9 pages, 3 nodes, cap 3; node 0 touches 6.
        let ft = vec![n(0), n(0), n(0), n(0), n(0), n(0), n(1), n(2), n(1)];
        let homes = assign_homes(&ft, 3);
        let counts = home_counts(&homes, 3);
        assert_eq!(counts, vec![3, 3, 3]);
    }

    #[test]
    fn single_node_owns_all() {
        let ft = vec![n(0); 5];
        let homes = assign_homes(&ft, 1);
        assert!(homes.iter().all(|&h| h == n(0)));
    }

    #[test]
    fn counts_sum_to_pages() {
        let ft: Vec<NodeId> = (0..100).map(|i| n(i % 4)).collect();
        let homes = assign_homes(&ft, 4);
        assert_eq!(home_counts(&homes, 4).iter().sum::<usize>(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_toucher() {
        let ft = vec![n(5)];
        let _ = assign_homes(&ft, 2);
    }
}
