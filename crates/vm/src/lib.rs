//! The VM-kernel substrate of the AS-COMA simulator.
//!
//! The paper's architectures are *operating-system* policies as much as
//! hardware ones: page allocation, relocation, and replacement all run in
//! the kernel, and their overhead (`K-OVERHD`) is the paper's central
//! measurement.  This crate implements the 4.4BSD-derived mechanisms the
//! paper describes:
//!
//! * [`mode::PageMode`] — Home / CC-NUMA / S-COMA / unmapped page states.
//! * [`page_table::PageTable`] — per-node mappings, S-COMA block-valid
//!   bits, TLB reference bits, and VC-NUMA's per-page local refetch
//!   counters.
//! * [`frame_pool::FramePool`] — the free-page pool with `free_min` /
//!   `free_target` water marks; memory pressure lives here.
//! * [`pageout::PageoutDaemon`] — second-chance reclamation; its failure
//!   to refill the pool is AS-COMA's thrashing signal.
//! * [`backoff`] — the AS-COMA threshold back-off automaton (raises on
//!   daemon failure, recovery, NUMA-first and relocation-disabled
//!   latches); the policy layer in the core crate delegates to it.
//! * [`home_alloc`] — first-touch-with-cap home-page placement.
//! * [`costs::KernelCosts`] — the cycle-cost model for kernel operations.

#![warn(missing_docs)]

pub mod backoff;
pub mod costs;
pub mod frame_pool;
pub mod home_alloc;
pub mod mode;
pub mod page_table;
pub mod pageout;
pub mod tlb;

pub use backoff::{adjust_period, BackoffParams, BackoffState, DaemonAdjust};
pub use costs::KernelCosts;
pub use frame_pool::FramePool;
pub use mode::PageMode;
pub use page_table::PageTable;
pub use pageout::{PageoutDaemon, PageoutOutcome};
pub use tlb::Tlb;
