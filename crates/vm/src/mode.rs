//! Page mapping modes.
//!
//! Every shared page, on every node, is in one of four states.  The mode
//! determines how a cache miss to the page is serviced and is the object
//! the five architectures' policies manipulate:
//!
//! * `Home` — this node is the page's home; misses go to local DRAM.
//! * `Numa` — mapped to the remote home's global physical address
//!   (CC-NUMA mode); misses probe the RAC, then go remote.
//! * `Scoma` — backed by a local DRAM frame acting as a page-grained cache
//!   (S-COMA mode); misses to *valid* blocks are local, invalid blocks
//!   fetch remotely and fill the frame.
//! * `Unmapped` — not yet touched by this node; the first access takes a
//!   page fault that establishes one of the other modes.

/// Mapping mode of one shared page on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageMode {
    /// Untouched: first access faults.
    Unmapped,
    /// This node is the page's home.
    Home,
    /// CC-NUMA mapping to the remote home.
    Numa,
    /// S-COMA mapping backed by local frame `frame`.
    Scoma {
        /// Index of the local DRAM frame caching this page.
        frame: u32,
    },
}

impl PageMode {
    /// True if the page is S-COMA-mapped.
    #[inline]
    pub fn is_scoma(self) -> bool {
        matches!(self, PageMode::Scoma { .. })
    }

    /// True if accesses to the page are serviced from local DRAM when the
    /// data is present (home or S-COMA).
    #[inline]
    pub fn is_local_backed(self) -> bool {
        matches!(self, PageMode::Home | PageMode::Scoma { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(PageMode::Scoma { frame: 3 }.is_scoma());
        assert!(!PageMode::Numa.is_scoma());
        assert!(PageMode::Home.is_local_backed());
        assert!(PageMode::Scoma { frame: 0 }.is_local_backed());
        assert!(!PageMode::Numa.is_local_backed());
        assert!(!PageMode::Unmapped.is_local_backed());
    }
}
