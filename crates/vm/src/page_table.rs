//! Per-node page table: mapping modes, S-COMA block-valid bits, reference
//! bits, and the S-COMA residency list the pageout daemon's clock hand
//! walks.
//!
//! The S-COMA page-cache state ("a few bits per block, ~2 words per page" —
//! the paper's Table 2 storage cost) lives here: a per-page bitmask of
//! which 128-byte blocks hold valid data, the TLB reference bit used by the
//! second-chance replacement algorithm, and the per-page *local* refetch
//! counter VC-NUMA's thrashing detector consults.

use crate::mode::PageMode;
use ascoma_sim::addr::VPage;

/// Per-page, per-node VM state.
///
/// The TLB reference bit lives *outside* this struct (see
/// [`PageTable::touch`]): it is written on every shared access, so it
/// gets a dense byte array of its own and the hot path never pulls a
/// full entry's cache line just to set one bit.
#[derive(Debug, Clone, Copy)]
struct PageEntry {
    mode: PageMode,
    /// Per-block valid bits for S-COMA pages (bit i = block i valid).
    valid: u32,
    /// Refetches absorbed by this page since it became S-COMA-mapped
    /// (VC-NUMA's local counter).
    local_refetches: u32,
    /// Position+1 in the S-COMA residency list, 0 if not resident.
    scoma_pos: u32,
}

impl Default for PageEntry {
    fn default() -> Self {
        Self {
            mode: PageMode::Unmapped,
            valid: 0,
            local_refetches: 0,
            scoma_pos: 0,
        }
    }
}

/// One node's page table over the shared address space.
#[derive(Debug, Clone)]
pub struct PageTable {
    entries: Vec<PageEntry>,
    /// TLB reference bits (second-chance input), one byte per page so
    /// the per-access [`PageTable::touch`] is a single unconditional
    /// store into a dense array.
    referenced: Vec<u8>,
    /// S-COMA-resident pages, in residency order (clock-hand domain).
    scoma_pages: Vec<VPage>,
    blocks_per_page: u32,
    /// Seeded fault: `unmap_scoma` leaves its stale residency-list entry
    /// behind.  Checker self-test builds only.
    #[cfg(feature = "check")]
    fault_residency_leak: bool,
    /// Seeded fault: `rejoin_reset` keeps the first S-COMA entry as if
    /// restored from a stale TLB snapshot.  Checker self-test builds only.
    #[cfg(feature = "check")]
    fault_rejoin_stale: bool,
}

impl PageTable {
    /// A table covering `num_pages` shared pages of `blocks_per_page`
    /// DSM blocks each (`blocks_per_page <= 32`).
    pub fn new(num_pages: u64, blocks_per_page: u32) -> Self {
        assert!(blocks_per_page <= 32, "valid bitmap is 32 bits wide");
        Self {
            entries: vec![PageEntry::default(); num_pages as usize],
            referenced: vec![0; num_pages as usize],
            scoma_pages: Vec::new(),
            blocks_per_page,
            #[cfg(feature = "check")]
            fault_residency_leak: false,
            #[cfg(feature = "check")]
            fault_rejoin_stale: false,
        }
    }

    /// Arm the residency-leak fault.  Checker self-test builds only.
    #[cfg(feature = "check")]
    pub fn inject_residency_leak(&mut self, armed: bool) {
        self.fault_residency_leak = armed;
    }

    /// Arm the rejoin-stale-TLB fault: [`PageTable::rejoin_reset`] keeps
    /// the first S-COMA entry (mapping, valid bits, residency slot) as if
    /// restored from a stale TLB snapshot, even though the cached data
    /// died with the node.  Checker self-test builds only.
    #[cfg(feature = "check")]
    pub fn inject_rejoin_stale_entry(&mut self, armed: bool) {
        self.fault_rejoin_stale = armed;
    }

    #[inline]
    fn e(&self, p: VPage) -> &PageEntry {
        &self.entries[p.0 as usize]
    }

    #[inline]
    fn e_mut(&mut self, p: VPage) -> &mut PageEntry {
        &mut self.entries[p.0 as usize]
    }

    /// Current mode of `page`.
    #[inline]
    pub fn mode(&self, page: VPage) -> PageMode {
        self.e(page).mode
    }

    /// Number of pages covered.
    pub fn num_pages(&self) -> usize {
        self.entries.len()
    }

    /// Mark `page` as homed at this node.
    pub fn map_home(&mut self, page: VPage) {
        debug_assert_eq!(self.e(page).mode, PageMode::Unmapped);
        self.e_mut(page).mode = PageMode::Home;
    }

    /// Map `page` in CC-NUMA mode.
    pub fn map_numa(&mut self, page: VPage) {
        let e = self.e_mut(page);
        debug_assert!(!e.mode.is_scoma(), "downgrade must go through unmap_scoma");
        e.mode = PageMode::Numa;
        self.referenced[page.0 as usize] = 1;
    }

    /// Map `page` in S-COMA mode backed by `frame`.  All blocks start
    /// invalid ("while the page mapping is valid, no remote data is
    /// actually cached in the local page yet").
    pub fn map_scoma(&mut self, page: VPage, frame: u32) {
        {
            let e = self.e_mut(page);
            debug_assert!(!e.mode.is_scoma());
            e.mode = PageMode::Scoma { frame };
            e.valid = 0;
            e.local_refetches = 0;
        }
        self.referenced[page.0 as usize] = 1;
        self.scoma_pages.push(page);
        let pos = self.scoma_pages.len() as u32;
        self.e_mut(page).scoma_pos = pos;
        self.debug_validate_residency(page);
    }

    /// Remove `page` from S-COMA mode, returning its frame.  The caller
    /// decides the successor mode (`Numa` for a downgrade, or the page may
    /// be immediately re-mapped).  Valid bits and the local refetch
    /// counter are cleared.
    pub fn unmap_scoma(&mut self, page: VPage) -> u32 {
        let (frame, pos) = match self.e(page).mode {
            PageMode::Scoma { frame } => (frame, self.e(page).scoma_pos),
            m => panic!("unmap_scoma on non-S-COMA page {page} ({m:?})"),
        };
        debug_assert!(pos > 0);
        let idx = (pos - 1) as usize;
        // Seeded fault: reset the entry but leave the stale residency-list
        // slot behind — per-page checks still pass; only a full
        // `validate()` (list length vs mapped count) can catch it.
        #[cfg(feature = "check")]
        if self.fault_residency_leak {
            let e = self.e_mut(page);
            e.mode = PageMode::Numa;
            e.valid = 0;
            e.local_refetches = 0;
            e.scoma_pos = 0;
            return frame;
        }
        // swap_remove from the residency list, fixing the moved page's slot.
        let last = self.scoma_pages.len() - 1;
        self.scoma_pages.swap_remove(idx);
        if idx != last {
            let moved = self.scoma_pages[idx];
            self.e_mut(moved).scoma_pos = pos;
            self.debug_validate_residency(moved);
        }
        let e = self.e_mut(page);
        e.mode = PageMode::Numa;
        e.valid = 0;
        e.local_refetches = 0;
        e.scoma_pos = 0;
        self.debug_validate_residency(page);
        frame
    }

    /// Reset the table after a crash: the rejoining node's TLB, mapping
    /// modes, valid bits, counters, and residency list all died with the
    /// node, so every page returns to `Unmapped` with clear reference
    /// bits.  The caller re-registers the mappings the node needs (its
    /// home pages, then CC-NUMA base mappings for still-unmapped shared
    /// pages) before the node serves accesses again.
    pub fn rejoin_reset(&mut self) {
        // Seeded fault: the rejoin path "restores" the first S-COMA entry
        // from a stale TLB snapshot.  The entry is internally consistent
        // (validate() passes), but its valid bits advertise data the node
        // no longer holds — only cross-checking against the directory can
        // catch it.
        #[cfg(feature = "check")]
        let kept = if self.fault_rejoin_stale {
            self.scoma_pages
                .first()
                .map(|&p| (p, self.entries[p.0 as usize]))
        } else {
            None
        };
        self.entries.fill(PageEntry::default());
        self.referenced.fill(0);
        self.scoma_pages.clear();
        #[cfg(feature = "check")]
        if let Some((p, mut e)) = kept {
            e.scoma_pos = 1;
            self.entries[p.0 as usize] = e;
            self.scoma_pages.push(p);
            self.debug_validate_residency(p);
        }
    }

    /// The S-COMA residency list (clock-hand domain), in residency order.
    pub fn scoma_pages(&self) -> &[VPage] {
        &self.scoma_pages
    }

    /// Number of S-COMA-resident pages.
    pub fn scoma_count(&self) -> usize {
        self.scoma_pages.len()
    }

    /// Whether S-COMA block `block_in_page` of `page` holds valid data.
    #[inline]
    pub fn block_valid(&self, page: VPage, block_in_page: u32) -> bool {
        debug_assert!(block_in_page < self.blocks_per_page);
        self.e(page).valid & (1 << block_in_page) != 0
    }

    /// Mark S-COMA block `block_in_page` of `page` valid.
    #[inline]
    pub fn set_block_valid(&mut self, page: VPage, block_in_page: u32) {
        debug_assert!(self.e(page).mode.is_scoma());
        self.e_mut(page).valid |= 1 << block_in_page;
    }

    /// Invalidate S-COMA block `block_in_page` of `page` (coherence
    /// invalidation from a remote writer).
    #[inline]
    pub fn clear_block_valid(&mut self, page: VPage, block_in_page: u32) {
        self.e_mut(page).valid &= !(1 << block_in_page);
    }

    /// Number of valid blocks currently cached in `page`'s frame.
    pub fn valid_blocks(&self, page: VPage) -> u32 {
        self.e(page).valid.count_ones()
    }

    /// Set the TLB reference bit (called on every access to the page):
    /// one unconditional byte store into a dense array.
    #[inline]
    pub fn touch(&mut self, page: VPage) {
        self.referenced[page.0 as usize] = 1;
    }

    /// Fused [`PageTable::touch`] + [`PageTable::mode`]: sets the
    /// reference bit and returns the page's mode in one call.
    #[inline]
    pub fn touch_and_mode(&mut self, page: VPage) -> PageMode {
        self.referenced[page.0 as usize] = 1;
        self.e(page).mode
    }

    /// Read and clear the reference bit (the pageout daemon's second-chance
    /// step).
    pub fn test_and_clear_referenced(&mut self, page: VPage) -> bool {
        std::mem::replace(&mut self.referenced[page.0 as usize], 0) != 0
    }

    /// Read the reference bit without clearing.
    pub fn referenced(&self, page: VPage) -> bool {
        self.referenced[page.0 as usize] != 0
    }

    /// Increment the page's local refetch counter (VC-NUMA bookkeeping):
    /// a remote fetch that filled this S-COMA page absorbed a would-be
    /// remote conflict miss.
    pub fn count_local_refetch(&mut self, page: VPage) {
        let e = self.e_mut(page);
        e.local_refetches = e.local_refetches.saturating_add(1);
    }

    /// The page's local refetch counter.
    pub fn local_refetches(&self, page: VPage) -> u32 {
        self.e(page).local_refetches
    }

    /// Residency bookkeeping rules for one page (O(1)).
    fn residency_error(&self, page: VPage) -> Option<String> {
        let e = self.e(page);
        match e.mode {
            PageMode::Scoma { .. } => {
                let pos = e.scoma_pos;
                if pos == 0 || pos as usize > self.scoma_pages.len() {
                    return Some(format!(
                        "S-COMA page {page} has residency position {pos} out of range"
                    ));
                }
                if self.scoma_pages[(pos - 1) as usize] != page {
                    return Some(format!(
                        "S-COMA page {page} residency slot {} holds {}",
                        pos - 1,
                        self.scoma_pages[(pos - 1) as usize]
                    ));
                }
            }
            _ => {
                if e.scoma_pos != 0 {
                    return Some(format!(
                        "non-S-COMA page {page} still on the residency list (pos {})",
                        e.scoma_pos
                    ));
                }
                if e.valid != 0 {
                    return Some(format!(
                        "non-S-COMA page {page} has valid bits {:#x}",
                        e.valid
                    ));
                }
            }
        }
        None
    }

    /// Full-table structural self-check: every residency-list entry is an
    /// S-COMA page whose back-pointer matches its slot, every non-resident
    /// page is off the list with no valid bits, and the list length equals
    /// the number of S-COMA-mapped pages.  `O(pages)` — for barrier-time
    /// and test probes.
    pub fn validate(&self) -> Result<(), String> {
        let mut scoma_modes = 0usize;
        for p in 0..self.entries.len() {
            let page = VPage(p as u64);
            if self.entries[p].mode.is_scoma() {
                scoma_modes += 1;
            }
            if let Some(e) = self.residency_error(page) {
                return Err(e);
            }
        }
        if scoma_modes != self.scoma_pages.len() {
            return Err(format!(
                "{} S-COMA-mapped pages but residency list holds {}",
                scoma_modes,
                self.scoma_pages.len()
            ));
        }
        Ok(())
    }

    /// Per-mutation residency hook: active in debug builds and
    /// `check`-feature builds, compiled out otherwise.
    #[inline]
    #[allow(unused_variables)]
    fn debug_validate_residency(&self, page: VPage) {
        #[cfg(any(debug_assertions, feature = "check"))]
        if let Some(e) = self.residency_error(page) {
            panic!("page-table residency invariant violated: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> PageTable {
        PageTable::new(64, 32)
    }

    #[test]
    fn pages_start_unmapped() {
        let t = pt();
        assert_eq!(t.mode(VPage(0)), PageMode::Unmapped);
        assert_eq!(t.num_pages(), 64);
        assert_eq!(t.scoma_count(), 0);
    }

    #[test]
    fn map_home_and_numa() {
        let mut t = pt();
        t.map_home(VPage(1));
        t.map_numa(VPage(2));
        assert_eq!(t.mode(VPage(1)), PageMode::Home);
        assert_eq!(t.mode(VPage(2)), PageMode::Numa);
    }

    #[test]
    fn scoma_blocks_start_invalid() {
        let mut t = pt();
        t.map_scoma(VPage(3), 7);
        assert_eq!(t.mode(VPage(3)), PageMode::Scoma { frame: 7 });
        for b in 0..32 {
            assert!(!t.block_valid(VPage(3), b));
        }
        assert_eq!(t.valid_blocks(VPage(3)), 0);
    }

    #[test]
    fn valid_bits_set_and_clear() {
        let mut t = pt();
        t.map_scoma(VPage(0), 0);
        t.set_block_valid(VPage(0), 5);
        t.set_block_valid(VPage(0), 31);
        assert!(t.block_valid(VPage(0), 5));
        assert_eq!(t.valid_blocks(VPage(0)), 2);
        t.clear_block_valid(VPage(0), 5);
        assert!(!t.block_valid(VPage(0), 5));
        assert!(t.block_valid(VPage(0), 31));
    }

    #[test]
    fn unmap_scoma_returns_frame_and_resets() {
        let mut t = pt();
        t.map_scoma(VPage(4), 9);
        t.set_block_valid(VPage(4), 0);
        t.count_local_refetch(VPage(4));
        let frame = t.unmap_scoma(VPage(4));
        assert_eq!(frame, 9);
        assert_eq!(t.mode(VPage(4)), PageMode::Numa);
        assert_eq!(t.valid_blocks(VPage(4)), 0);
        assert_eq!(t.local_refetches(VPage(4)), 0);
        assert_eq!(t.scoma_count(), 0);
    }

    #[test]
    fn residency_list_tracks_membership_through_swap_remove() {
        let mut t = pt();
        for (i, p) in [10u64, 11, 12, 13].iter().enumerate() {
            t.map_scoma(VPage(*p), i as u32);
        }
        assert_eq!(t.scoma_count(), 4);
        // Remove from the middle; the last page is swapped into its slot.
        t.unmap_scoma(VPage(11));
        assert_eq!(t.scoma_count(), 3);
        let pages: Vec<u64> = t.scoma_pages().iter().map(|p| p.0).collect();
        assert!(pages.contains(&10) && pages.contains(&12) && pages.contains(&13));
        // And the moved page can still be removed correctly.
        t.unmap_scoma(VPage(13));
        let pages: Vec<u64> = t.scoma_pages().iter().map(|p| p.0).collect();
        assert_eq!(pages.len(), 2);
        assert!(pages.contains(&10) && pages.contains(&12));
    }

    #[test]
    fn reference_bit_second_chance_cycle() {
        let mut t = pt();
        t.map_scoma(VPage(0), 0);
        // map_scoma sets the bit (the mapping access touched it).
        assert!(t.test_and_clear_referenced(VPage(0)));
        assert!(!t.test_and_clear_referenced(VPage(0)));
        t.touch(VPage(0));
        assert!(t.referenced(VPage(0)));
    }

    #[test]
    fn remap_after_downgrade_works() {
        let mut t = pt();
        t.map_scoma(VPage(0), 1);
        t.unmap_scoma(VPage(0));
        assert_eq!(t.mode(VPage(0)), PageMode::Numa);
        t.map_scoma(VPage(0), 2);
        assert_eq!(t.mode(VPage(0)), PageMode::Scoma { frame: 2 });
        assert_eq!(t.scoma_count(), 1);
    }

    #[test]
    #[should_panic(expected = "unmap_scoma on non-S-COMA")]
    fn unmap_non_scoma_panics() {
        let mut t = pt();
        t.map_numa(VPage(0));
        t.unmap_scoma(VPage(0));
    }

    #[test]
    fn rejoin_reset_returns_table_to_cold_state() {
        let mut t = pt();
        t.map_home(VPage(0));
        t.map_numa(VPage(1));
        t.map_scoma(VPage(2), 3);
        t.set_block_valid(VPage(2), 4);
        t.count_local_refetch(VPage(2));
        t.touch(VPage(1));
        t.rejoin_reset();
        for p in 0..4 {
            assert_eq!(t.mode(VPage(p)), PageMode::Unmapped);
            assert!(!t.referenced(VPage(p)));
        }
        assert_eq!(t.scoma_count(), 0);
        assert_eq!(t.local_refetches(VPage(2)), 0);
        t.validate().expect("reset table is well-formed");
        // The node can re-register and operate normally.
        t.map_home(VPage(0));
        t.map_numa(VPage(2));
        t.map_scoma(VPage(3), 0);
        t.validate().expect("re-registered table is well-formed");
    }

    #[cfg(feature = "check")]
    #[test]
    fn rejoin_stale_entry_fault_survives_reset_self_consistently() {
        let mut t = pt();
        t.map_scoma(VPage(5), 2);
        t.set_block_valid(VPage(5), 1);
        t.map_scoma(VPage(6), 3);
        t.inject_rejoin_stale_entry(true);
        t.rejoin_reset();
        assert_eq!(t.mode(VPage(5)), PageMode::Scoma { frame: 2 });
        assert!(t.block_valid(VPage(5), 1), "stale valid bits survive");
        assert_eq!(t.mode(VPage(6)), PageMode::Unmapped);
        assert_eq!(t.scoma_count(), 1);
        // The stale entry is internally consistent: only a directory
        // cross-check can expose it.
        t.validate().expect("stale entry passes local validation");
    }

    #[test]
    fn local_refetch_counter_saturates_upward() {
        let mut t = pt();
        t.map_scoma(VPage(0), 0);
        for _ in 0..5 {
            t.count_local_refetch(VPage(0));
        }
        assert_eq!(t.local_refetches(VPage(0)), 5);
    }
}
