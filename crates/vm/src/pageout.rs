//! The pageout daemon: second-chance reclamation of cold S-COMA pages.
//!
//! "Whenever the size of the free page pool falls below `free_min` pages,
//! the pageout daemon attempts to evict enough *cold* pages to refill the
//! free page pool to `free_target` pages.  Only S-COMA pages are considered
//! for replacement. … Cold pages are detected using a second chance
//! algorithm: the TLB reference bit associated with each S-COMA page is
//! reset each time it is considered for eviction by the pageout daemon.
//! If the reference bit is zero when the pageout daemon next runs, the page
//! is considered cold."
//!
//! The daemon *selects* victims; the machine layer performs the flushes
//! (processor cache + directory writeback) and releases the frames, because
//! those side effects span substrates.  The daemon's failure to reach
//! `free_target` is the thrashing signal AS-COMA's back-off keys on.

use crate::page_table::PageTable;
use ascoma_sim::addr::VPage;
use ascoma_sim::Cycles;

/// Result of one daemon invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageoutOutcome {
    /// Cold pages selected for eviction, in selection order.  The caller
    /// must flush each, `unmap_scoma` it, and release its frame.
    pub victims: Vec<VPage>,
    /// Pages examined by the clock hand this run.
    pub examined: u32,
    /// Whether the deficit was fully covered — `false` is the paper's
    /// thrashing indicator ("whenever the pageout daemon is unable to
    /// reclaim at least free_target free pages, AS-COMA begins allocating
    /// pages in CC-NUMA mode" and raises the refetch threshold).
    pub reached_target: bool,
}

/// Second-chance pageout daemon state for one node.
#[derive(Debug, Clone)]
pub struct PageoutDaemon {
    hand: usize,
    /// Minimum cycles between successive invocations; AS-COMA's back-off
    /// "increases the time between successive invocations of the pageout
    /// daemon" by raising this.
    pub period: Cycles,
    last_run: Option<Cycles>,
    epochs: u64,
}

impl PageoutDaemon {
    /// A daemon with the given initial minimum invocation period.
    pub fn new(period: Cycles) -> Self {
        Self {
            hand: 0,
            period,
            last_run: None,
            epochs: 0,
        }
    }

    /// Completed invocations of [`PageoutDaemon::run`] so far (a monotone
    /// epoch number for trace correlation).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Current clock-hand index (canonical-state input for the
    /// conformance checker; the hand determines future victim order).
    pub fn hand(&self) -> usize {
        self.hand
    }

    /// Whether the daemon may run again at `now` (rate limiting).
    pub fn may_run(&self, now: Cycles) -> bool {
        match self.last_run {
            None => true,
            Some(t) => now.saturating_sub(t) >= self.period,
        }
    }

    /// Run the daemon at `now`, trying to select `deficit` cold victims.
    ///
    /// Performs **one lap** of the clock over the S-COMA residency list:
    /// a referenced page has its bit cleared and survives (second chance);
    /// a page found unreferenced — i.e. not touched since the *previous*
    /// daemon scan — is selected.  A single run deliberately cannot both
    /// clear and reclaim the same page: whether a page is cold is judged
    /// against real application activity between runs, which is exactly
    /// the signal AS-COMA's thrashing detector needs ("the pageout daemon
    /// will be unable to find sufficient cold pages" when the working set
    /// is genuinely hot).
    pub fn run(&mut self, now: Cycles, pt: &mut PageTable, deficit: u32) -> PageoutOutcome {
        self.last_run = Some(now);
        self.epochs += 1;
        let n = pt.scoma_count();
        let mut victims = Vec::new();
        let mut examined = 0u32;
        if n == 0 || deficit == 0 {
            return PageoutOutcome {
                victims,
                examined,
                reached_target: deficit == 0,
            };
        }
        for _ in 0..n {
            if victims.len() as u32 >= deficit {
                break;
            }
            let idx = self.hand % n;
            self.hand = (self.hand + 1) % n;
            let page = pt.scoma_pages()[idx];
            examined += 1;
            if pt.test_and_clear_referenced(page) {
                continue; // second chance
            }
            victims.push(page);
        }
        let reached = victims.len() as u32 >= deficit;
        // Selection postconditions (debug / `check` builds): victims are
        // distinct S-COMA-resident pages — the machine will unmap each one
        // exactly once.
        #[cfg(any(debug_assertions, feature = "check"))]
        {
            for (i, &v) in victims.iter().enumerate() {
                assert!(
                    pt.mode(v).is_scoma(),
                    "daemon selected non-resident victim {v}"
                );
                assert!(
                    !victims[..i].contains(&v),
                    "daemon selected victim {v} twice"
                );
            }
        }
        PageoutOutcome {
            victims,
            examined,
            reached_target: reached,
        }
    }

    /// Select a single victim immediately (the R-NUMA/VC-NUMA fault-time
    /// replacement path, which evicts on demand rather than keeping a
    /// pool).  Uses the same clock; if every page is referenced after one
    /// clearing lap, the page under the hand is taken anyway.
    pub fn pick_victim(&mut self, pt: &mut PageTable) -> Option<VPage> {
        let n = pt.scoma_count();
        if n == 0 {
            return None;
        }
        for _ in 0..2 * n {
            let idx = self.hand % n;
            self.hand = (self.hand + 1) % n;
            let page = pt.scoma_pages()[idx];
            if !pt.test_and_clear_referenced(page) {
                return Some(page);
            }
        }
        // Everything referenced twice in a row: evict under the hand.
        let idx = self.hand % n;
        self.hand = (self.hand + 1) % n;
        Some(pt.scoma_pages()[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_scoma(pages: &[u64]) -> PageTable {
        let mut pt = PageTable::new(64, 32);
        for (i, &p) in pages.iter().enumerate() {
            pt.map_scoma(VPage(p), i as u32);
        }
        pt
    }

    #[test]
    fn no_scoma_pages_reclaims_nothing() {
        let mut d = PageoutDaemon::new(0);
        let mut pt = PageTable::new(8, 32);
        let out = d.run(0, &mut pt, 3);
        assert!(out.victims.is_empty());
        assert!(!out.reached_target);
    }

    #[test]
    fn zero_deficit_is_trivially_satisfied() {
        let mut d = PageoutDaemon::new(0);
        let mut pt = table_with_scoma(&[1, 2]);
        let out = d.run(0, &mut pt, 0);
        assert!(out.reached_target);
        assert!(out.victims.is_empty());
    }

    #[test]
    fn referenced_pages_get_a_second_chance() {
        let mut d = PageoutDaemon::new(0);
        // All pages referenced (map_scoma sets the bit): one run clears
        // bits but reclaims nothing — a fully hot set is a *failed* run.
        let mut pt = table_with_scoma(&[1, 2, 3]);
        let out = d.run(0, &mut pt, 2);
        assert!(out.victims.is_empty());
        assert!(!out.reached_target);
        // Untouched since: the next run reclaims them.
        let out2 = d.run(100, &mut pt, 2);
        assert_eq!(out2.victims.len(), 2);
        assert!(out2.reached_target);
    }

    #[test]
    fn recently_touched_pages_survive() {
        let mut d = PageoutDaemon::new(0);
        let mut pt = table_with_scoma(&[1, 2, 3, 4]);
        // Clear all bits, then touch pages 1 and 3: they are hot.
        for p in [1u64, 2, 3, 4] {
            pt.test_and_clear_referenced(VPage(p));
        }
        pt.touch(VPage(1));
        pt.touch(VPage(3));
        let out = d.run(0, &mut pt, 2);
        assert_eq!(out.victims.len(), 2);
        assert!(!out.victims.contains(&VPage(1)));
        assert!(!out.victims.contains(&VPage(3)));
        assert!(out.victims.contains(&VPage(2)));
        assert!(out.victims.contains(&VPage(4)));
    }

    #[test]
    fn all_hot_pages_means_failure() {
        let mut d = PageoutDaemon::new(0);
        let mut pt = table_with_scoma(&[1, 2, 3]);
        // A page re-touched between every pair of runs is never reclaimed:
        // sustained hotness = sustained failure (AS-COMA's thrash signal).
        for round in 0..4u64 {
            for p in [1u64, 2, 3] {
                pt.touch(VPage(p));
            }
            let out = d.run(round * 100, &mut pt, 2);
            assert!(out.victims.is_empty(), "round {round}: {:?}", out.victims);
            assert!(!out.reached_target);
            assert!(out.examined <= 3);
        }
    }

    #[test]
    fn deficit_larger_than_residency_fails() {
        let mut d = PageoutDaemon::new(0);
        let mut pt = table_with_scoma(&[1, 2]);
        for p in [1u64, 2] {
            pt.test_and_clear_referenced(VPage(p));
        }
        let out = d.run(0, &mut pt, 5);
        assert_eq!(out.victims.len(), 2);
        assert!(!out.reached_target);
    }

    #[test]
    fn victims_are_not_duplicated() {
        let mut d = PageoutDaemon::new(0);
        let mut pt = table_with_scoma(&[1, 2, 3]);
        for p in [1u64, 2, 3] {
            pt.test_and_clear_referenced(VPage(p));
        }
        let out = d.run(0, &mut pt, 3);
        let mut v = out.victims.clone();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), out.victims.len());
    }

    #[test]
    fn rate_limiting_respects_period() {
        let mut d = PageoutDaemon::new(100);
        assert!(d.may_run(0));
        let mut pt = table_with_scoma(&[1]);
        d.run(0, &mut pt, 0);
        assert!(!d.may_run(50));
        assert!(d.may_run(100));
    }

    #[test]
    fn pick_victim_prefers_unreferenced() {
        let mut d = PageoutDaemon::new(0);
        let mut pt = table_with_scoma(&[1, 2]);
        pt.test_and_clear_referenced(VPage(2));
        // Page 1 referenced, page 2 not: 2 must be picked.
        assert_eq!(d.pick_victim(&mut pt), Some(VPage(2)));
    }

    #[test]
    fn pick_victim_falls_back_when_all_hot() {
        let mut d = PageoutDaemon::new(0);
        let mut pt = table_with_scoma(&[1]);
        // Keep the page referenced across laps... bits only clear once per
        // encounter, so the second lap will find it unreferenced; re-touch
        // is a machine-level behavior.  Verify a victim is always produced.
        assert!(d.pick_victim(&mut pt).is_some());
    }

    #[test]
    fn pick_victim_none_without_scoma_pages() {
        let mut d = PageoutDaemon::new(0);
        let mut pt = PageTable::new(8, 32);
        assert_eq!(d.pick_victim(&mut pt), None);
    }
}
