//! A software-filled TLB model.
//!
//! The paper's kernel charges include "TLB refill" among the remapping
//! costs, and the modeled PA-RISC fills its TLB in software — so TLB
//! misses are kernel work (`K-BASE` for ordinary fills; remaps
//! additionally shoot down the entry, which is folded into the remap
//! charge).  The model is a set-associative tag store over virtual page
//! numbers with round-robin replacement: accurate enough to charge fills
//! at working-set transitions without simulating PTE walks.

use ascoma_sim::addr::VPage;

/// A set-associative TLB over virtual page numbers.
///
/// Tags are raw `u64` page numbers with a sentinel for invalid entries
/// (page numbers are < 2^62 by the packed-trace encoding, so the
/// sentinel cannot collide): half the footprint of `Option<u64>` slots
/// and a branch-light compare loop on the per-access probe.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// MRU filter: the last page that hit or filled, **provably still
    /// resident** (cleared whenever its entry could have been shot down
    /// or evicted).  Spatial locality makes consecutive accesses to the
    /// same page the overwhelmingly common case, so most probes are one
    /// compare instead of a set sweep.  A pure shortcut: any filter hit
    /// would also hit the set sweep, so hit/miss counts are unchanged.
    mru: u64,
    /// `sets x ways` tags; [`Tlb::INVALID`] = empty slot.
    entries: Vec<u64>,
    ways: usize,
    set_mask: u64,
    /// Round-robin fill pointer per set.
    fill: Vec<u8>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Tag value marking an empty slot.
    const INVALID: u64 = u64::MAX;

    /// A TLB of `entries` total entries and `ways` associativity (both
    /// powers of two, `ways <= entries`, at most 256 ways).
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries.is_power_of_two() && ways.is_power_of_two());
        assert!(ways <= entries && ways <= 256);
        let sets = entries / ways;
        Self {
            mru: Self::INVALID,
            entries: vec![Self::INVALID; entries],
            ways,
            set_mask: sets as u64 - 1,
            fill: vec![0; sets],
            hits: 0,
            misses: 0,
        }
    }

    /// The paper-era configuration: 64 entries, 8-way.
    pub fn paper() -> Self {
        Self::new(64, 8)
    }

    #[inline]
    fn set_of(&self, page: VPage) -> usize {
        (page.0 & self.set_mask) as usize
    }

    /// Translate `page`; returns `true` on a hit.  On a miss the entry is
    /// filled (round-robin within the set) and the caller charges the
    /// software-fill cost.
    #[inline]
    pub fn access(&mut self, page: VPage) -> bool {
        debug_assert_ne!(page.0, Self::INVALID);
        // MRU filter: guaranteed resident, so this is the same answer
        // the sweep would give, one compare sooner.
        if page.0 == self.mru {
            self.hits += 1;
            return true;
        }
        let set = self.set_of(page);
        let base = set * self.ways;
        let slots = &mut self.entries[base..base + self.ways];
        // Plain equality sweep over raw tags: unrollable and free of
        // per-slot discriminant branches.
        if slots.contains(&page.0) {
            self.hits += 1;
            self.mru = page.0;
            return true;
        }
        self.misses += 1;
        let way = self.fill[set] as usize % self.ways;
        self.fill[set] = self.fill[set].wrapping_add(1);
        slots[way] = page.0;
        // The fill makes `page` resident; reassigning the filter also
        // covers the case where the round-robin victim was the old MRU.
        self.mru = page.0;
        false
    }

    /// Shoot down the entry for `page` (page remap), if present.
    pub fn invalidate(&mut self, page: VPage) {
        if self.mru == page.0 {
            self.mru = Self::INVALID;
        }
        let set = self.set_of(page);
        let base = set * self.ways;
        for e in &mut self.entries[base..base + self.ways] {
            if *e == page.0 {
                *e = Self::INVALID;
            }
        }
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut t = Tlb::paper();
        assert!(!t.access(VPage(5)));
        assert!(t.access(VPage(5)));
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn capacity_eviction_round_robins() {
        let mut t = Tlb::new(4, 2); // 2 sets x 2 ways
                                    // Pages 0, 2, 4 all map to set 0; third fill evicts the first.
        assert!(!t.access(VPage(0)));
        assert!(!t.access(VPage(2)));
        assert!(!t.access(VPage(4))); // evicts page 0 (way 0)
        assert!(!t.access(VPage(0))); // refills over page 2 (way 1)
        assert!(t.access(VPage(4))); // still resident in way 0
        assert!(!t.access(VPage(2))); // was evicted by page 0's refill
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut t = Tlb::new(4, 2);
        assert!(!t.access(VPage(0))); // set 0
        assert!(!t.access(VPage(1))); // set 1
        assert!(t.access(VPage(0)));
        assert!(t.access(VPage(1)));
    }

    #[test]
    fn invalidate_forces_refill() {
        let mut t = Tlb::paper();
        t.access(VPage(3));
        assert!(t.access(VPage(3)));
        t.invalidate(VPage(3));
        assert!(!t.access(VPage(3)));
    }

    #[test]
    fn invalidate_absent_page_is_noop() {
        let mut t = Tlb::paper();
        t.access(VPage(1));
        t.invalidate(VPage(99));
        assert!(t.access(VPage(1)));
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut t = Tlb::paper(); // 64 entries
        for p in 0..64u64 {
            t.access(VPage(p));
        }
        let (h0, m0) = t.stats();
        assert_eq!((h0, m0), (0, 64));
        for p in 0..64u64 {
            assert!(t.access(VPage(p)), "page {p} evicted within capacity");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let _ = Tlb::new(48, 8);
    }
}
