//! Frame-pool conservation under churn (feature `churntests`).
//!
//! Random sequences of map/unmap/daemon actions — the same operation mix
//! the machine's fault, relocation and pageout paths drive — must never
//! leak or duplicate a frame: `free + resident == cache_frames` after
//! every step, and the page table and pool stay structurally valid.
//!
//! Uses the vendored deterministic RNG (`ascoma_sim::rng::SimRng`), so a
//! failure reproduces from the printed seed.

#![cfg(feature = "churntests")]

use ascoma_sim::addr::VPage;
use ascoma_sim::rng::SimRng;
use ascoma_vm::{FramePool, PageTable, PageoutDaemon};

/// One churn scenario: pages, frames and an action budget.
struct Churn {
    pages: u64,
    total_frames: u32,
    home_frames: u32,
    steps: u32,
}

fn conservation_holds(c: &Churn, seed: u64) {
    let mut rng = SimRng::seed_from(seed);
    let mut pt = PageTable::new(c.pages, 32);
    let mut pool = FramePool::new(c.total_frames, c.home_frames, 1, 2);
    let mut daemon = PageoutDaemon::new(0);
    let mut now = 0u64;

    for step in 0..c.steps {
        now += 10;
        match rng.below(100) {
            // Map a random unmapped page if a frame is free.
            0..=49 => {
                let page = VPage(rng.below(c.pages));
                if pt.mode(page) == ascoma_vm::PageMode::Unmapped {
                    if let Some(frame) = pool.alloc() {
                        pt.map_scoma(page, frame);
                    }
                }
            }
            // Unmap a random resident page.
            50..=74 => {
                if pt.scoma_count() > 0 {
                    let idx = rng.below(pt.scoma_count() as u64) as usize;
                    let page = pt.scoma_pages()[idx];
                    let frame = pt.unmap_scoma(page);
                    pool.release(frame);
                }
            }
            // Touch a random page (keeps the daemon's clock honest).
            75..=89 => {
                pt.touch(VPage(rng.below(c.pages)));
            }
            // Run the pageout daemon against the current deficit.
            _ => {
                let deficit = pool.deficit();
                let out = daemon.run(now, &mut pt, deficit);
                for v in out.victims {
                    let frame = pt.unmap_scoma(v);
                    pool.release(frame);
                }
            }
        }
        assert_eq!(
            pool.free_count() + pt.scoma_count() as u32,
            pool.cache_frames(),
            "seed {seed} step {step}: frame conservation broken"
        );
        pt.validate()
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: page table invalid: {e}"));
        pool.validate()
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: frame pool invalid: {e}"));
    }
}

#[test]
fn conservation_under_contended_churn() {
    // Fewer frames than pages: every path through alloc-failure and the
    // daemon's deficit logic gets exercised.
    let c = Churn {
        pages: 64,
        total_frames: 24,
        home_frames: 8,
        steps: 4000,
    };
    let mut seeds = SimRng::seed_from(0xC0FFEE);
    for _ in 0..16 {
        conservation_holds(&c, seeds.next_u64());
    }
}

#[test]
fn conservation_under_abundant_frames() {
    // More frames than pages: the free list stays long and release-order
    // bookkeeping dominates.
    let c = Churn {
        pages: 16,
        total_frames: 64,
        home_frames: 4,
        steps: 4000,
    };
    let mut seeds = SimRng::seed_from(0xBEEF);
    for _ in 0..16 {
        conservation_holds(&c, seeds.next_u64());
    }
}

#[test]
fn conservation_with_tiny_cache() {
    // A two-frame page cache: maximal churn pressure per frame.
    let c = Churn {
        pages: 32,
        total_frames: 10,
        home_frames: 8,
        steps: 4000,
    };
    let mut seeds = SimRng::seed_from(7);
    for _ in 0..16 {
        conservation_holds(&c, seeds.next_u64());
    }
}
