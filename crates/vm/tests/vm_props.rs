//! Property tests for the VM substrate: frame-pool soundness, home
//! placement balance, and page-table valid-bit behavior under random
//! operation sequences.

// Gated: requires the external `proptest` crate, unavailable in the
// offline build environment.  Enable with `--features proptests` after
// restoring the proptest dev-dependency.
#![cfg(feature = "proptests")]

use ascoma_sim::addr::VPage;
use ascoma_sim::NodeId;
use ascoma_vm::home_alloc::{assign_homes, home_counts};
use ascoma_vm::{FramePool, PageTable};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The pool never hands out the same frame twice, never hands out
    /// home frames, and release/alloc round-trips preserve the free count.
    #[test]
    fn frame_pool_never_double_allocates(
        total in 2u32..64,
        ops in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let home = total / 2;
        let mut pool = FramePool::new(total, home, 1, 2);
        let mut live: BTreeSet<u32> = BTreeSet::new();
        for alloc in ops {
            if alloc {
                if let Some(f) = pool.alloc() {
                    prop_assert!(f >= home && f < total, "frame {f} out of range");
                    prop_assert!(live.insert(f), "double allocation of {f}");
                }
            } else if let Some(&f) = live.iter().next() {
                live.remove(&f);
                pool.release(f);
            }
            prop_assert_eq!(
                pool.free_count() + live.len() as u32,
                total - home,
                "conservation violated"
            );
        }
    }

    /// First-touch-with-cap placement is balanced: every node within
    /// ceil(pages/nodes), totals conserved, and touchers under the cap
    /// keep their pages.
    #[test]
    fn home_assignment_is_balanced(
        nodes in 2usize..8,
        touchers in proptest::collection::vec(0u16..8, 1..200),
    ) {
        let ft: Vec<NodeId> = touchers
            .iter()
            .map(|&t| NodeId(t % nodes as u16))
            .collect();
        let homes = assign_homes(&ft, nodes);
        let counts = home_counts(&homes, nodes);
        let cap = ft.len().div_ceil(nodes);
        prop_assert_eq!(counts.iter().sum::<usize>(), ft.len());
        for (n, &c) in counts.iter().enumerate() {
            prop_assert!(c <= cap, "node {n} over cap: {c} > {cap}");
        }
        // A node that touched fewer pages than the cap keeps all of them.
        let mut touched = vec![0usize; nodes];
        for t in &ft {
            touched[t.idx()] += 1;
        }
        for (n, &tn) in touched.iter().enumerate() {
            if tn <= cap {
                let kept = homes
                    .iter()
                    .zip(&ft)
                    .filter(|(h, t)| h.idx() == n && t.idx() == n)
                    .count();
                prop_assert_eq!(kept, tn, "node {} lost first-touch pages", n);
            }
        }
    }

    /// Valid-bit bookkeeping matches a BTreeSet model through arbitrary
    /// set/clear sequences, and unmap clears everything.
    #[test]
    fn valid_bits_match_set_model(
        ops in proptest::collection::vec((0u32..32, any::<bool>()), 1..200),
    ) {
        let mut pt = PageTable::new(4, 32);
        pt.map_scoma(VPage(1), 0);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for (b, set) in ops {
            if set {
                pt.set_block_valid(VPage(1), b);
                model.insert(b);
            } else {
                pt.clear_block_valid(VPage(1), b);
                model.remove(&b);
            }
            prop_assert_eq!(pt.valid_blocks(VPage(1)) as usize, model.len());
            for i in 0..32 {
                prop_assert_eq!(pt.block_valid(VPage(1), i), model.contains(&i));
            }
        }
        pt.unmap_scoma(VPage(1));
        prop_assert_eq!(pt.valid_blocks(VPage(1)), 0);
    }

    /// The S-COMA residency list stays consistent with mapping state
    /// through random map/unmap sequences.
    #[test]
    fn residency_list_matches_mapping_state(
        ops in proptest::collection::vec((0u64..16, any::<bool>()), 1..150),
    ) {
        let mut pt = PageTable::new(16, 32);
        let mut frames: u32 = 0;
        for (page, map) in ops {
            let p = VPage(page);
            let is_scoma = pt.mode(p).is_scoma();
            if map && !is_scoma && pt.mode(p) == ascoma_vm::PageMode::Unmapped {
                pt.map_scoma(p, frames);
                frames += 1;
            } else if !map && is_scoma {
                pt.unmap_scoma(p);
            }
            // Residency list membership == scoma mode, no duplicates.
            let listed: BTreeSet<u64> = pt.scoma_pages().iter().map(|q| q.0).collect();
            prop_assert_eq!(listed.len(), pt.scoma_count());
            for q in 0..16u64 {
                prop_assert_eq!(
                    listed.contains(&q),
                    pt.mode(VPage(q)).is_scoma(),
                    "page {} listing mismatch", q
                );
            }
        }
    }
}
