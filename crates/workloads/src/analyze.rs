//! Static workload analysis: the inputs to the paper's Table 5.
//!
//! For each workload the paper reports the number of *home pages* per node,
//! the *maximum remote pages* any node ever accesses, and the *ideal
//! pressure* — "the memory pressure below which S-COMA and AS-COMA machines
//! act like a 'perfect' S-COMA, meaning that every node has enough free
//! memory to cache all remote pages that it will ever access."
//!
//! These quantities are derivable from the trace without simulation:
//! membership (which pages a node touches) is static, and homes follow
//! from first-touch-with-cap placement.

use crate::trace::{ScheduleItem, Trace};
use ascoma_sim::NodeId;
use ascoma_vm::home_alloc::{assign_homes, home_counts};

/// Table 5 row data for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name.
    pub name: String,
    /// Nodes in the run.
    pub nodes: usize,
    /// Total shared pages.
    pub shared_pages: u64,
    /// Home pages at each node.
    pub home_pages: Vec<usize>,
    /// Distinct remote pages accessed by each node.
    pub remote_pages: Vec<usize>,
    /// Max over nodes of `remote_pages` (Table 5's "Maximum remote pages").
    pub max_remote_pages: usize,
    /// Ideal memory pressure: `home / (home + max_remote)` — below this,
    /// every node can cache its entire remote working set locally.
    pub ideal_pressure: f64,
    /// Total dynamic memory operations in the trace.
    pub total_ops: u64,
    /// Dynamic shared accesses per node that target remote-homed pages.
    pub remote_access_fraction: f64,
}

/// Compute the home map for a trace (first-touch with per-node cap).
pub fn homes_of(trace: &Trace) -> Vec<NodeId> {
    assign_homes(&trace.first_toucher, trace.nodes)
}

/// Analyze a trace into its Table 5 profile.
pub fn profile(trace: &Trace, page_bytes: u64) -> WorkloadProfile {
    let homes = homes_of(trace);
    let home_pages = home_counts(&homes, trace.nodes);

    let mut remote_pages = vec![0usize; trace.nodes];
    let mut remote_accesses = 0u64;
    let mut shared_accesses = 0u64;

    for (n, prog) in trace.programs.iter().enumerate() {
        // Dynamic multiplicity of each segment.
        let mut mult = vec![0u64; prog.segments.len()];
        for item in &prog.schedule {
            if let ScheduleItem::Run(i) = item {
                mult[*i as usize] += 1;
            }
        }
        let mut touched = vec![false; trace.shared_pages as usize];
        for (seg, &m) in prog.segments.iter().zip(&mult) {
            if m == 0 {
                continue;
            }
            for op in &seg.ops {
                if op.private() {
                    continue;
                }
                shared_accesses += m;
                let page = (op.addr() / page_bytes) as usize;
                if homes[page].idx() != n {
                    touched[page] = true;
                    remote_accesses += m;
                }
            }
        }
        remote_pages[n] = touched.iter().filter(|&&t| t).count();
    }

    let max_remote = remote_pages.iter().copied().max().unwrap_or(0);
    let mean_home = home_pages.iter().sum::<usize>() as f64 / trace.nodes as f64;
    let ideal = if mean_home + max_remote as f64 > 0.0 {
        mean_home / (mean_home + max_remote as f64)
    } else {
        1.0
    };

    WorkloadProfile {
        name: trace.name.clone(),
        nodes: trace.nodes,
        shared_pages: trace.shared_pages,
        home_pages,
        remote_pages,
        max_remote_pages: max_remote,
        ideal_pressure: ideal,
        total_ops: trace.total_ops(),
        remote_access_fraction: if shared_accesses > 0 {
            remote_accesses as f64 / shared_accesses as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{NodeProgram, Segment, Trace};

    /// Two nodes; node 0 homes page 0, node 1 homes page 1; node 0 reads
    /// page 1 (remote), node 1 reads only its own page.
    fn tiny() -> Trace {
        let mut p0 = NodeProgram::default();
        let mut s0 = Segment::new(0);
        s0.push(0, false); // local
        s0.push(4096, false); // remote
        let i0 = p0.add_segment(s0);
        p0.schedule = vec![ScheduleItem::Run(i0), ScheduleItem::Run(i0)];

        let mut p1 = NodeProgram::default();
        let mut s1 = Segment::new(0);
        s1.push(4096, false); // local to node 1
        let i1 = p1.add_segment(s1);
        p1.schedule = vec![ScheduleItem::Run(i1)];

        Trace {
            name: "tiny".into(),
            nodes: 2,
            shared_pages: 2,
            first_toucher: vec![NodeId(0), NodeId(1)],
            programs: vec![p0, p1],
        }
    }

    #[test]
    fn profile_counts_remote_membership() {
        let p = profile(&tiny(), 4096);
        assert_eq!(p.home_pages, vec![1, 1]);
        assert_eq!(p.remote_pages, vec![1, 0]);
        assert_eq!(p.max_remote_pages, 1);
    }

    #[test]
    fn ideal_pressure_formula() {
        let p = profile(&tiny(), 4096);
        // mean home 1, max remote 1 -> 0.5.
        assert!((p.ideal_pressure - 0.5).abs() < 1e-9);
    }

    #[test]
    fn remote_access_fraction_uses_dynamic_counts() {
        let p = profile(&tiny(), 4096);
        // Node 0 runs its segment twice: 2 local + 2 remote; node 1: 1
        // local. Remote fraction = 2/5.
        assert!((p.remote_access_fraction - 0.4).abs() < 1e-9);
        assert_eq!(p.total_ops, 5);
    }
}
