//! `barnes` — SPLASH-2 Barnes-Hut N-body simulation (paper input: 16 K
//! particles).
//!
//! Structure reproduced: a distributed body array; each iteration every
//! node's force computation re-reads a *dense contiguous window* of every
//! other node's bodies (the paper: "Barnes exhibits very high spatial
//! locality.  It accesses large dense regions of remote memory, and thus
//! can make good use of a local S-COMA page cache"), with heavy user
//! compute per interaction ("barnes is very compute-intensive").  The same
//! windows recur every iteration, so "most of the remote pages that are
//! accessed are part of the working set and 'hot' for long periods of
//! execution" — the second thrash-sensitive application alongside em3d
//! and radix.

use crate::synth::{sweep, sweep_private, Arena};
use crate::trace::{NodeProgram, ScheduleItem, Segment, Trace};

/// Parameters for the barnes generator.
#[derive(Debug, Clone, Copy)]
pub struct BarnesParams {
    /// Compute nodes.
    pub nodes: usize,
    /// Bodies per node.
    pub bodies_per_node: u64,
    /// Bytes per body record.
    pub body_bytes: u64,
    /// Fraction of each peer's slab read during force computation.
    pub window_frac: f64,
    /// Force-phase sweeps of the remote windows per timestep (the tree
    /// walk reads each interacting body many times per step; the L1 is
    /// thrashed between re-reads by local traffic, so re-reads miss and
    /// are absorbed by the page cache on S-COMA-like machines).
    pub reuse: u32,
    /// Simulation timesteps.
    pub iters: u32,
    /// User compute cycles per interaction (high: compute-bound app).
    pub compute_per_op: u32,
    /// Private scratch (stacks) swept per iteration.
    pub private_bytes: u64,
    /// Shared octree-cell pages rebuilt each timestep under locks.
    pub tree_pages: u64,
    /// Lock-protected insertion batches per node per timestep.
    pub tree_batches: u32,
    /// Number of tree locks (cell subtrees).
    pub tree_locks: u32,
}

impl Default for BarnesParams {
    fn default() -> Self {
        Self {
            nodes: 8,
            bodies_per_node: 4096,
            body_bytes: 128,
            window_frac: 0.25,
            reuse: 3,
            iters: 6,
            compute_per_op: 30,
            private_bytes: 16 * 1024,
            tree_pages: 16,
            tree_batches: 8,
            tree_locks: 4,
        }
    }
}

impl BarnesParams {
    /// A tiny configuration for tests.
    pub fn tiny() -> Self {
        Self {
            nodes: 4,
            bodies_per_node: 256,
            iters: 2,
            ..Self::default()
        }
    }

    /// Paper-like scale (16 K particles; ~0.5 MB of home data per node —
    /// the paper notes barnes's simulated problem size is small).
    pub fn paper() -> Self {
        Self {
            bodies_per_node: 2048,
            window_frac: 0.3,
            iters: 8,
            ..Self::default()
        }
    }

    /// Build the trace.
    pub fn build(&self, page_bytes: u64) -> Trace {
        assert!(self.nodes >= 2);
        let mut arena = Arena::new(page_bytes);
        let bodies = arena.alloc_partitioned(
            self.bodies_per_node * self.body_bytes * self.nodes as u64,
            self.nodes,
        );
        // The shared octree cells, rebuilt under locks every timestep.
        let tree = arena.alloc_partitioned(self.tree_pages * page_bytes, self.nodes);

        let mut programs = Vec::with_capacity(self.nodes);
        for n in 0..self.nodes {
            let mut prog = NodeProgram::default();
            let my = bodies.slab(n, self.nodes, page_bytes);

            // Force computation: the tree walk re-reads the interacting
            // windows of every peer's bodies `reuse` times per step, with
            // local-slab traffic between re-reads evicting them from the
            // small L1.
            let mut force = Segment::new(self.compute_per_op);
            for _ in 0..self.reuse.max(1) {
                for j in 0..self.nodes {
                    let theirs = bodies.slab(j, self.nodes, page_bytes);
                    let window = if j == n {
                        theirs.bytes
                    } else {
                        ((theirs.bytes as f64 * self.window_frac) as u64)
                            .max(self.body_bytes)
                            .min(theirs.bytes)
                    };
                    sweep(&mut force, theirs.base, window, self.body_bytes, false);
                }
            }
            sweep_private(&mut force, 0, self.private_bytes, 64, false);
            let fi = prog.add_segment(force);

            // Position update: write sweep of own bodies.
            let mut update = Segment::new(4);
            sweep(&mut update, my.base, my.bytes, self.body_bytes, true);
            let ui = prog.add_segment(update);

            // Tree build: each batch inserts a slice of the node's bodies
            // into the shared cell array under a subtree lock (the SPLASH
            // barnes loading phase).  Cells are write-shared across nodes.
            let batches: Vec<u32> = (0..self.tree_batches)
                .map(|b| {
                    let mut seg = Segment::new(6);
                    let cells_per_batch = (tree.bytes / self.tree_batches as u64 / 64).max(1);
                    for c in 0..cells_per_batch {
                        // Interleave nodes within the cell array so cells
                        // are genuinely shared.
                        let off = ((b as u64 * cells_per_batch + c) * self.nodes as u64 + n as u64)
                            * 64
                            % tree.bytes;
                        seg.push(tree.base + (off & !63), true);
                    }
                    prog.add_segment(seg)
                })
                .collect();

            for _ in 0..self.iters {
                for (b, &seg) in batches.iter().enumerate() {
                    let lock = b as u32 % self.tree_locks.max(1);
                    prog.schedule.push(ScheduleItem::Lock(lock));
                    prog.schedule.push(ScheduleItem::Run(seg));
                    prog.schedule.push(ScheduleItem::Unlock(lock));
                }
                prog.schedule.push(ScheduleItem::Barrier);
                prog.schedule.push(ScheduleItem::Run(fi));
                prog.schedule.push(ScheduleItem::Barrier);
                prog.schedule.push(ScheduleItem::Run(ui));
                prog.schedule.push(ScheduleItem::Barrier);
            }
            programs.push(prog);
        }

        let shared_pages = arena.pages();
        Trace {
            name: "barnes".into(),
            nodes: self.nodes,
            shared_pages,
            first_toucher: arena.into_first_toucher(),
            programs,
        }
    }
}

/// Convenience: build with default parameters.
pub fn barnes(page_bytes: u64) -> Trace {
    BarnesParams::default().build(page_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::profile;

    #[test]
    fn builds_valid_trace() {
        let t = BarnesParams::tiny().build(4096);
        t.validate(4096);
        assert!(t.total_ops() > 0);
    }

    #[test]
    fn remote_windows_are_dense_and_bounded() {
        let p = BarnesParams::default();
        let prof = profile(&p.build(4096), 4096);
        let slab_pages = (p.bodies_per_node * p.body_bytes / 4096) as usize;
        let per_peer = (slab_pages as f64 * p.window_frac).ceil() as usize + 1;
        // Remote membership = force-phase windows + the shared tree cells.
        let bound = (p.nodes - 1) * per_peer + p.tree_pages as usize;
        assert!(prof.max_remote_pages <= bound);
        assert!(prof.max_remote_pages >= (p.nodes - 1) * per_peer / 2);
    }

    #[test]
    fn ideal_pressure_matches_paper_band() {
        // The paper's barnes ideal pressure is in the 30-40% region.
        let prof = profile(&BarnesParams::default().build(4096), 4096);
        assert!(
            (0.25..0.5).contains(&prof.ideal_pressure),
            "ideal pressure {}",
            prof.ideal_pressure
        );
    }

    #[test]
    fn reads_are_spatially_dense() {
        let t = BarnesParams::tiny().build(4096);
        let force = &t.programs[0].segments[0];
        let shared: Vec<u64> = force
            .ops
            .iter()
            .filter(|o| !o.private())
            .map(|o| o.addr())
            .collect();
        let sequential = shared.windows(2).filter(|w| w[1] == w[0] + 128).count();
        assert!(
            sequential * 10 >= shared.len() * 7,
            "force reads not dense: {sequential}/{}",
            shared.len()
        );
    }

    #[test]
    fn compute_heavy() {
        let p = BarnesParams::default();
        let t = p.build(4096);
        assert!(t.programs[0].segments[0].compute_per_op >= 10);
    }
}
