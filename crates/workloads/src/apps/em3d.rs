//! `em3d` — electromagnetic wave propagation on a bipartite graph
//! (Split-C benchmark, shared-memory port; paper input: 32 K nodes, 5%
//! remote edges, 10 iterations).
//!
//! Structure reproduced: two arrays of graph nodes (E and H), block-
//! partitioned; each update of a local E-node reads `degree` H-neighbors
//! of which a fixed ~5% live on *other* compute nodes, within a bounded
//! window of each neighbor's slab (the graph is built once, so the same
//! remote pages are re-read every iteration — "most of the remote pages
//! ever accessed are in the node's working set, i.e., they are 'hot'
//! pages").  This is the paper's poster child for thrashing: R-NUMA
//! collapses above ~70% pressure while AS-COMA holds.

use crate::synth::{sweep_private, Arena};
use crate::trace::{NodeProgram, ScheduleItem, Segment, Trace};
use ascoma_sim::rng::SimRng;

/// Parameters for the em3d generator.
#[derive(Debug, Clone, Copy)]
pub struct Em3dParams {
    /// Compute nodes.
    pub nodes: usize,
    /// Graph nodes (per array) per compute node.
    pub n_per_node: u64,
    /// Bytes per graph-node record.
    pub elem_bytes: u64,
    /// Edges per graph node.
    pub degree: u32,
    /// Fraction of edges crossing compute nodes (paper: 5%).
    pub remote_frac: f64,
    /// How many downstream neighbors receive a node's remote edges.
    pub neighbor_span: usize,
    /// Fraction of a neighbor's slab that remote edges may target.
    pub remote_window_frac: f64,
    /// Sweep iterations (paper: 10).
    pub iters: u32,
    /// User compute cycles per access.
    pub compute_per_op: u32,
    /// Private scratch bytes swept once per iteration.
    pub private_bytes: u64,
    /// RNG seed for graph construction.
    pub seed: u64,
}

impl Default for Em3dParams {
    fn default() -> Self {
        Self {
            nodes: 8,
            n_per_node: 8192,
            elem_bytes: 64,
            degree: 8,
            remote_frac: 0.05,
            neighbor_span: 3,
            remote_window_frac: 0.22,
            iters: 10,
            compute_per_op: 8,
            private_bytes: 16 * 1024,
            seed: 0xE3D0,
        }
    }
}

impl Em3dParams {
    /// A tiny configuration for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            nodes: 4,
            n_per_node: 512,
            iters: 2,
            ..Self::default()
        }
    }

    /// The paper's input scale (32 K graph nodes, 10 iterations).
    pub fn paper() -> Self {
        Self {
            nodes: 8,
            n_per_node: 4096,
            elem_bytes: 256,
            iters: 10,
            ..Self::default()
        }
    }

    /// Build the trace.
    pub fn build(&self, page_bytes: u64) -> Trace {
        assert!(self.nodes >= 2, "em3d needs at least 2 nodes");
        let mut arena = Arena::new(page_bytes);
        let total = self.n_per_node * self.nodes as u64;
        let e_arr = arena.alloc_partitioned(total * self.elem_bytes, self.nodes);
        let h_arr = arena.alloc_partitioned(total * self.elem_bytes, self.nodes);
        let root = SimRng::seed_from(self.seed);

        let mut programs = Vec::with_capacity(self.nodes);
        for n in 0..self.nodes {
            let mut rng = root.derive(n as u64);
            let mut prog = NodeProgram::default();

            // One update segment per (target array, source array) phase.
            let mk_phase = |dst_base: u64, src_base: u64, rng: &mut SimRng| {
                let mut seg = Segment::new(self.compute_per_op);
                let my_slab = |base: u64| base + n as u64 * self.n_per_node * self.elem_bytes;
                let dst0 = my_slab(dst_base);
                let src0 = my_slab(src_base);
                let window = ((self.n_per_node as f64 * self.remote_window_frac) as u64).max(1);
                for i in 0..self.n_per_node {
                    for _ in 0..self.degree {
                        if rng.chance(self.remote_frac) {
                            // Remote edge: bounded window of a downstream
                            // neighbor's source slab.
                            let nb = (n + 1 + rng.below(self.neighbor_span as u64) as usize)
                                % self.nodes;
                            let idx = rng.below(window);
                            let a =
                                src_base + (nb as u64 * self.n_per_node + idx) * self.elem_bytes;
                            seg.push(a, false);
                        } else if rng.chance(0.9) {
                            // Local edge with graph locality: neighbours
                            // cluster near the node itself, so most local
                            // reads hit lines already resident in the L1.
                            let span = 16u64;
                            let lo = i.saturating_sub(span / 2);
                            let idx = (lo + rng.below(span)).min(self.n_per_node - 1);
                            seg.push(src0 + idx * self.elem_bytes, false);
                        } else {
                            // Long-range local edge.
                            let idx = rng.below(self.n_per_node);
                            seg.push(src0 + idx * self.elem_bytes, false);
                        }
                    }
                    seg.push(dst0 + i * self.elem_bytes, true);
                }
                seg
            };

            let e_seg = mk_phase(e_arr.base, h_arr.base, &mut rng);
            let h_seg = mk_phase(h_arr.base, e_arr.base, &mut rng);
            let ei = prog.add_segment(e_seg);
            let hi = prog.add_segment(h_seg);

            let mut priv_seg = Segment::new(1);
            sweep_private(&mut priv_seg, 0, self.private_bytes, 64, true);
            let pi = prog.add_segment(priv_seg);

            for _ in 0..self.iters {
                prog.schedule.push(ScheduleItem::Run(ei));
                prog.schedule.push(ScheduleItem::Barrier);
                prog.schedule.push(ScheduleItem::Run(hi));
                prog.schedule.push(ScheduleItem::Run(pi));
                prog.schedule.push(ScheduleItem::Barrier);
            }
            programs.push(prog);
        }

        let shared_pages = arena.pages();
        Trace {
            name: "em3d".into(),
            nodes: self.nodes,
            shared_pages,
            first_toucher: arena.into_first_toucher(),
            programs,
        }
    }
}

/// Convenience: build with default parameters.
pub fn em3d(page_bytes: u64) -> Trace {
    Em3dParams::default().build(page_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::profile;

    #[test]
    fn builds_valid_trace() {
        let t = Em3dParams::tiny().build(4096);
        t.validate(4096);
        assert_eq!(t.nodes, 4);
        assert!(t.total_ops() > 0);
    }

    #[test]
    fn remote_pages_are_bounded_by_window() {
        let p = Em3dParams::default();
        let t = p.build(4096);
        let prof = profile(&t, 4096);
        // Remote edges target at most neighbor_span windows, in each of
        // the two arrays (E-phase reads H windows, H-phase reads E windows).
        let slab_pages = (p.n_per_node * p.elem_bytes) as usize / 4096;
        let window_pages =
            (slab_pages as f64 * p.remote_window_frac).ceil() as usize + p.neighbor_span;
        assert!(
            prof.max_remote_pages <= 2 * p.neighbor_span * window_pages + 2,
            "remote pages {} exceed window bound",
            prof.max_remote_pages
        );
        assert!(prof.max_remote_pages > 0);
    }

    #[test]
    fn ideal_pressure_is_moderately_high() {
        // The paper's em3d thrashes only above ~70% pressure; our
        // generator must put the ideal pressure in that region.
        let prof = profile(&Em3dParams::default().build(4096), 4096);
        assert!(
            (0.5..0.9).contains(&prof.ideal_pressure),
            "ideal pressure {} outside em3d-like range",
            prof.ideal_pressure
        );
    }

    #[test]
    fn remote_fraction_is_near_configured() {
        let p = Em3dParams::default();
        let prof = profile(&p.build(4096), 4096);
        // degree reads at 5% remote + 1 local write per graph node:
        // expected remote dynamic fraction = 0.05 * d / (d + 1) = 4%.
        assert!(
            (0.02..0.07).contains(&prof.remote_access_fraction),
            "remote fraction {}",
            prof.remote_access_fraction
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Em3dParams::tiny().build(4096);
        let b = Em3dParams::tiny().build(4096);
        assert_eq!(a.total_ops(), b.total_ops());
        assert_eq!(a.programs[0].segments[0].ops, b.programs[0].segments[0].ops);
    }

    #[test]
    fn barrier_counts_match_across_nodes() {
        let t = Em3dParams::tiny().build(4096);
        let b0 = t.programs[0].barrier_count();
        assert!(t.programs.iter().all(|p| p.barrier_count() == b0));
        assert_eq!(b0, 2 * 2); // 2 barriers per iteration x 2 iters
    }
}
