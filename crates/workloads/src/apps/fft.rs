//! `fft` — the SPLASH-2 six-step FFT (paper input: 256 K points, "tuned
//! for cache sizes").
//!
//! Structure reproduced: a complex data array block-partitioned by rows;
//! local butterfly compute phases sweep the node's own slab, and each
//! transpose phase reads one contiguous *tile* from every other node's
//! slab in long sequential runs.  Each remote page is touched in a single
//! dense streak a handful of times per run, so almost no page accumulates
//! the 64 refetches needed for relocation ("only a tiny fraction of pages
//! in fft are accessed enough to be eligible for relocation, so all of the
//! hybrid architectures effectively become CC-NUMAs") — and the sequential
//! 32-byte strides within 128-byte DSM blocks make the little RAC
//! surprisingly effective, the paper's "minor optimization [that] had a
//! larger impact on performance than we had anticipated".

use crate::synth::{sweep, sweep_private, Arena};
use crate::trace::{NodeProgram, ScheduleItem, Segment, Trace};

/// Parameters for the fft generator.
#[derive(Debug, Clone, Copy)]
pub struct FftParams {
    /// Compute nodes.
    pub nodes: usize,
    /// Complex points in the signal.
    pub points: u64,
    /// Bytes per point (complex double = 16).
    pub elem_bytes: u64,
    /// Transpose phases per run (six-step FFT: 3).
    pub transposes: u32,
    /// Outer repetitions of the whole FFT.
    pub iters: u32,
    /// User compute cycles per access in butterfly phases.
    pub compute_per_op: u32,
    /// Access stride within sweeps (bytes).
    pub stride: u64,
    /// Private scratch bytes (twiddle tables etc.) swept per phase.
    pub private_bytes: u64,
}

impl Default for FftParams {
    fn default() -> Self {
        Self {
            nodes: 8,
            points: 65_536,
            elem_bytes: 16,
            transposes: 3,
            iters: 2,
            compute_per_op: 6,
            stride: 32,
            private_bytes: 8 * 1024,
        }
    }
}

impl FftParams {
    /// A tiny configuration for tests.
    pub fn tiny() -> Self {
        Self {
            nodes: 4,
            points: 4096,
            iters: 1,
            ..Self::default()
        }
    }

    /// The paper's input scale (256 K points).
    pub fn paper() -> Self {
        Self {
            points: 262_144,
            ..Self::default()
        }
    }

    /// Build the trace.
    pub fn build(&self, page_bytes: u64) -> Trace {
        assert!(self.nodes >= 2);
        let mut arena = Arena::new(page_bytes);
        let data = arena.alloc_partitioned(self.points * self.elem_bytes, self.nodes);

        let mut programs = Vec::with_capacity(self.nodes);
        for n in 0..self.nodes {
            let mut prog = NodeProgram::default();
            let my = data.slab(n, self.nodes, page_bytes);

            // Butterfly compute phase: read+write sweep of own slab.
            let mut compute = Segment::new(self.compute_per_op);
            sweep(&mut compute, my.base, my.bytes, self.stride, false);
            sweep(&mut compute, my.base, my.bytes, self.stride, true);
            sweep_private(&mut compute, 0, self.private_bytes, 64, false);
            let ci = prog.add_segment(compute);

            // Transpose phase: read tile (n, j) of every other node's slab,
            // write the corresponding local tile.
            let mut transpose = Segment::new(2);
            for j in 0..self.nodes {
                if j == n {
                    continue;
                }
                let theirs = data.slab(j, self.nodes, page_bytes);
                let tile = theirs.bytes / self.nodes as u64;
                let tile = tile.max(self.stride);
                let off = (n as u64 * tile).min(theirs.bytes.saturating_sub(tile));
                sweep(&mut transpose, theirs.base + off, tile, self.stride, false);
                // Scatter into own slab (local writes).
                let mine_off = (j as u64 * tile).min(my.bytes.saturating_sub(tile));
                sweep(&mut transpose, my.base + mine_off, tile, self.stride, true);
            }
            let ti = prog.add_segment(transpose);

            for _ in 0..self.iters {
                prog.schedule.push(ScheduleItem::Run(ci));
                prog.schedule.push(ScheduleItem::Barrier);
                for _ in 0..self.transposes {
                    prog.schedule.push(ScheduleItem::Run(ti));
                    prog.schedule.push(ScheduleItem::Barrier);
                    prog.schedule.push(ScheduleItem::Run(ci));
                    prog.schedule.push(ScheduleItem::Barrier);
                }
            }
            programs.push(prog);
        }

        let shared_pages = arena.pages();
        Trace {
            name: "fft".into(),
            nodes: self.nodes,
            shared_pages,
            first_toucher: arena.into_first_toucher(),
            programs,
        }
    }
}

/// Convenience: build with default parameters.
pub fn fft(page_bytes: u64) -> Trace {
    FftParams::default().build(page_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::profile;

    #[test]
    fn builds_valid_trace() {
        let t = FftParams::tiny().build(4096);
        t.validate(4096);
        assert!(t.total_ops() > 0);
    }

    #[test]
    fn remote_tiles_touch_a_slice_of_every_peer() {
        let p = FftParams::default();
        let prof = profile(&p.build(4096), 4096);
        // Each node reads one tile (1/nodes of a slab) from each peer.
        let slab_pages = (p.points * p.elem_bytes / p.nodes as u64 / 4096) as usize;
        let tile_pages = slab_pages / p.nodes + 2;
        assert!(prof.max_remote_pages <= (p.nodes - 1) * tile_pages);
        assert!(prof.max_remote_pages >= (p.nodes - 1) * (slab_pages / p.nodes) / 2);
    }

    #[test]
    fn remote_accesses_are_a_small_fraction() {
        let prof = profile(&FftParams::default().build(4096), 4096);
        // Compute phases dominate; transposes are the only remote traffic.
        assert!(
            prof.remote_access_fraction < 0.35,
            "remote fraction {}",
            prof.remote_access_fraction
        );
    }

    #[test]
    fn transpose_reads_are_sequential_within_pages() {
        // Sequentiality is what makes the RAC work: consecutive shared
        // reads in the transpose segment must be 32 bytes apart within
        // long runs.
        let t = FftParams::tiny().build(4096);
        let prog = &t.programs[0];
        let transpose = &prog.segments[1];
        let reads: Vec<u64> = transpose
            .ops
            .iter()
            .filter(|o| !o.write() && !o.private())
            .map(|o| o.addr())
            .collect();
        let sequential = reads.windows(2).filter(|w| w[1] == w[0] + 32).count();
        assert!(
            sequential * 10 >= reads.len() * 8,
            "transpose reads not sequential enough: {sequential}/{}",
            reads.len()
        );
    }

    #[test]
    fn barrier_structure_consistent() {
        let t = FftParams::tiny().build(4096);
        let b = t.programs[0].barrier_count();
        assert!(t.programs.iter().all(|p| p.barrier_count() == b));
    }
}
