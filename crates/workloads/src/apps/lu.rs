//! `lu` — SPLASH-2 blocked dense LU factorization (paper input: 512x512
//! matrix, 16x16 blocks, contiguous allocation, run on 4 nodes).
//!
//! Structure reproduced: the matrix is a K x K grid of page-sized blocks
//! with a 2-D cyclic owner map.  At step `k` the perimeter blocks (row k
//! and column k) become the read-hot set for every node that owns interior
//! blocks — "every process uses each set of shared pages in the problem
//! set for only a short time before moving to another set of pages.  Thus,
//! unlike radix, only a small set of remote pages are active at any time,
//! and a small page cache can hold each process's active working set
//! completely."  This is why all hybrids beat CC-NUMA by ~20% at *every*
//! pressure.

use crate::synth::{sweep, Arena};
use crate::trace::{NodeProgram, ScheduleItem, Segment, Trace};
use ascoma_sim::NodeId;

/// Parameters for the lu generator.
#[derive(Debug, Clone, Copy)]
pub struct LuParams {
    /// Compute nodes (the paper runs lu on 4).
    pub nodes: usize,
    /// Blocks per matrix dimension (matrix is `k_dim`^2 pages).
    pub k_dim: u64,
    /// Access stride within a block sweep (bytes).
    pub stride: u64,
    /// Times each pivot block is re-read per interior update (the inner
    /// kernel streams the pivot panels repeatedly).
    pub pivot_reuse: u32,
    /// User compute cycles per access.
    pub compute_per_op: u32,
}

impl Default for LuParams {
    fn default() -> Self {
        Self {
            nodes: 4,
            k_dim: 24,
            stride: 64,
            pivot_reuse: 2,
            compute_per_op: 4,
        }
    }
}

impl LuParams {
    /// A tiny configuration for tests.
    pub fn tiny() -> Self {
        Self {
            nodes: 4,
            k_dim: 8,
            ..Self::default()
        }
    }

    /// Paper-scale: 512x512 doubles in 16x16 blocks = 32x32 blocks; one
    /// block = 2 KB, so two blocks per page -> ~512 pages.
    pub fn paper() -> Self {
        Self {
            k_dim: 32,
            ..Self::default()
        }
    }

    /// 2-D cyclic owner of block `(i, j)`.
    fn owner(&self, i: u64, j: u64) -> usize {
        // Factor nodes into an r x c grid (4 -> 2x2).
        let r = (self.nodes as f64).sqrt() as u64;
        let r = r.max(1);
        let c = (self.nodes as u64).div_ceil(r);
        (((i % r) * c + (j % c)) % self.nodes as u64) as usize
    }

    /// Build the trace.
    pub fn build(&self, page_bytes: u64) -> Trace {
        assert!(self.nodes >= 2);
        assert!(self.k_dim >= 2);
        let k = self.k_dim;
        let mut arena = Arena::new(page_bytes);
        // Block (i, j) occupies one page at index i*K + j.
        let owners: Vec<usize> = (0..k * k).map(|idx| self.owner(idx / k, idx % k)).collect();
        let matrix = arena.alloc(k * k * page_bytes, |p| NodeId(owners[p as usize] as u16));
        let block_addr = |i: u64, j: u64| matrix.base + (i * k + j) * page_bytes;

        let mut programs: Vec<NodeProgram> =
            (0..self.nodes).map(|_| NodeProgram::default()).collect();

        for step in 0..k - 1 {
            // Phase 1: diagonal + perimeter factorization by their owners.
            for (n, prog) in programs.iter_mut().enumerate() {
                let mut seg = Segment::new(self.compute_per_op);
                if self.owner(step, step) == n {
                    sweep(
                        &mut seg,
                        block_addr(step, step),
                        page_bytes,
                        self.stride,
                        true,
                    );
                }
                // Perimeter blocks: owner reads the diagonal and updates.
                for m in step + 1..k {
                    if self.owner(step, m) == n {
                        sweep(
                            &mut seg,
                            block_addr(step, step),
                            page_bytes,
                            self.stride,
                            false,
                        );
                        sweep(&mut seg, block_addr(step, m), page_bytes, self.stride, true);
                    }
                    if self.owner(m, step) == n {
                        sweep(
                            &mut seg,
                            block_addr(step, step),
                            page_bytes,
                            self.stride,
                            false,
                        );
                        sweep(&mut seg, block_addr(m, step), page_bytes, self.stride, true);
                    }
                }
                let i = prog.add_segment(seg);
                prog.schedule.push(ScheduleItem::Run(i));
                prog.schedule.push(ScheduleItem::Barrier);
            }

            // Phase 2: interior update — each node reads the (often remote)
            // pivot row/column blocks for every interior block it owns.
            for (n, prog) in programs.iter_mut().enumerate() {
                let mut seg = Segment::new(self.compute_per_op);
                for i in step + 1..k {
                    for j in step + 1..k {
                        if self.owner(i, j) != n {
                            continue;
                        }
                        for _ in 0..self.pivot_reuse.max(1) {
                            sweep(
                                &mut seg,
                                block_addr(i, step),
                                page_bytes,
                                self.stride,
                                false,
                            );
                            sweep(
                                &mut seg,
                                block_addr(step, j),
                                page_bytes,
                                self.stride,
                                false,
                            );
                        }
                        sweep(&mut seg, block_addr(i, j), page_bytes, self.stride, true);
                    }
                }
                let idx = prog.add_segment(seg);
                prog.schedule.push(ScheduleItem::Run(idx));
                prog.schedule.push(ScheduleItem::Barrier);
            }
        }

        let shared_pages = arena.pages();
        Trace {
            name: "lu".into(),
            nodes: self.nodes,
            shared_pages,
            first_toucher: arena.into_first_toucher(),
            programs,
        }
    }
}

/// Convenience: build with default parameters.
pub fn lu(page_bytes: u64) -> Trace {
    LuParams::default().build(page_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::profile;

    #[test]
    fn builds_valid_trace() {
        let t = LuParams::tiny().build(4096);
        t.validate(4096);
        assert!(t.total_ops() > 0);
        assert_eq!(t.shared_pages, 64);
    }

    #[test]
    fn owner_map_is_balanced() {
        let p = LuParams::default();
        let mut counts = vec![0usize; p.nodes];
        for i in 0..p.k_dim {
            for j in 0..p.k_dim {
                counts[p.owner(i, j)] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= (p.k_dim as usize), "{counts:?}");
    }

    #[test]
    fn most_remote_pages_become_hot_eventually() {
        // Every node eventually reads most pivot rows/columns, so remote
        // membership approaches the non-owned share of the matrix.
        let p = LuParams::default();
        let prof = profile(&p.build(4096), 4096);
        let total = (p.k_dim * p.k_dim) as usize;
        assert!(
            prof.max_remote_pages > total / 4,
            "remote pages {} too few",
            prof.max_remote_pages
        );
    }

    #[test]
    fn active_window_shrinks_over_steps() {
        // The phase-2 segment of a late step touches far fewer distinct
        // pages than an early step's.
        let p = LuParams::default();
        let t = p.build(4096);
        let prog = &t.programs[0];
        let distinct_pages = |seg: &crate::trace::Segment| {
            let mut pages: Vec<u64> = seg.ops.iter().map(|o| o.addr() / 4096).collect();
            pages.sort_unstable();
            pages.dedup();
            pages.len()
        };
        // Segments alternate phase1/phase2 per step.
        let early = distinct_pages(&prog.segments[1]);
        let late = distinct_pages(&prog.segments[prog.segments.len() - 1]);
        assert!(late < early, "late window {late} !< early {early}");
    }

    #[test]
    fn barriers_match() {
        let t = LuParams::tiny().build(4096);
        let b = t.programs[0].barrier_count();
        assert!(t.programs.iter().all(|p| p.barrier_count() == b));
        assert_eq!(b as u64, 2 * (LuParams::tiny().k_dim - 1));
    }
}
