//! Microbenchmark family: small parameterized kernels for calibration,
//! ablations and API examples.
//!
//! These are not from the paper's evaluation; they isolate single
//! memory-system behaviors the six applications mix together:
//!
//! * [`uniform`] — uniformly random reads/writes over a shared region
//!   (pure capacity stress, no locality).
//! * [`hotspot`] — a skewed mix: most accesses to a small hot set, the
//!   rest uniform (classic working-set shape).
//! * [`streaming`] — long sequential read streams (the RAC's best case).
//! * [`read_only_table`] — a never-written lookup table homed on node 0,
//!   scanned scatteredly by everyone (the replication extension's best
//!   case, and a hot-home bottleneck for CC-NUMA).
//! * [`ping_pong`] — two nodes alternately writing the same block
//!   (worst-case coherence traffic).

use crate::synth::{sweep, Arena};
use crate::trace::{NodeProgram, ScheduleItem, Segment, Trace};
use ascoma_sim::rng::SimRng;
use ascoma_sim::NodeId;

/// Uniformly random accesses over a block-partitioned shared region.
pub fn uniform(
    nodes: usize,
    pages_per_node: u64,
    accesses_per_node: u64,
    write_frac: f64,
    iters: u32,
    seed: u64,
    page_bytes: u64,
) -> Trace {
    assert!(nodes >= 2);
    let mut arena = Arena::new(page_bytes);
    let region = arena.alloc_partitioned(pages_per_node * nodes as u64 * page_bytes, nodes);
    let root = SimRng::seed_from(seed);
    let programs = (0..nodes)
        .map(|n| {
            let mut rng = root.derive(n as u64);
            let mut p = NodeProgram::default();
            let mut seg = Segment::new(2);
            for _ in 0..accesses_per_node {
                let a = region.base + (rng.below(region.bytes / 32)) * 32;
                seg.push(a, rng.chance(write_frac));
            }
            let i = p.add_segment(seg);
            for _ in 0..iters {
                p.schedule.push(ScheduleItem::Run(i));
                p.schedule.push(ScheduleItem::Barrier);
            }
            p
        })
        .collect();
    Trace {
        name: "uniform".into(),
        nodes,
        shared_pages: arena.pages(),
        first_toucher: arena.into_first_toucher(),
        programs,
    }
}

/// A skewed mix: `hot_frac` of accesses hit a `hot_pages`-page hot set.
#[allow(clippy::too_many_arguments)]
pub fn hotspot(
    nodes: usize,
    pages_per_node: u64,
    hot_pages: u64,
    hot_frac: f64,
    accesses_per_node: u64,
    iters: u32,
    seed: u64,
    page_bytes: u64,
) -> Trace {
    assert!(nodes >= 2);
    let mut arena = Arena::new(page_bytes);
    let cold = arena.alloc_partitioned(pages_per_node * nodes as u64 * page_bytes, nodes);
    let hot = arena.alloc(hot_pages * page_bytes, |p| {
        NodeId((p % nodes as u64) as u16)
    });
    let root = SimRng::seed_from(seed);
    let programs = (0..nodes)
        .map(|n| {
            let mut rng = root.derive(n as u64 + 1000);
            let mut p = NodeProgram::default();
            let mut seg = Segment::new(2);
            for _ in 0..accesses_per_node {
                let (r, base, bytes) = if rng.chance(hot_frac) {
                    (&mut rng, hot.base, hot.bytes)
                } else {
                    (&mut rng, cold.base, cold.bytes)
                };
                let a = base + r.below(bytes / 32) * 32;
                seg.push(a, false);
            }
            let i = p.add_segment(seg);
            for _ in 0..iters {
                p.schedule.push(ScheduleItem::Run(i));
                p.schedule.push(ScheduleItem::Barrier);
            }
            p
        })
        .collect();
    Trace {
        name: "hotspot".into(),
        nodes,
        shared_pages: arena.pages(),
        first_toucher: arena.into_first_toucher(),
        programs,
    }
}

/// Long sequential read streams over every peer's slab.
pub fn streaming(nodes: usize, pages_per_node: u64, iters: u32, page_bytes: u64) -> Trace {
    assert!(nodes >= 2);
    let mut arena = Arena::new(page_bytes);
    let region = arena.alloc_partitioned(pages_per_node * nodes as u64 * page_bytes, nodes);
    let programs = (0..nodes)
        .map(|n| {
            let mut p = NodeProgram::default();
            let mut seg = Segment::new(1);
            for j in 0..nodes {
                let slab = region.slab((n + j) % nodes, nodes, page_bytes);
                sweep(&mut seg, slab.base, slab.bytes, 32, false);
            }
            let i = p.add_segment(seg);
            for _ in 0..iters {
                p.schedule.push(ScheduleItem::Run(i));
                p.schedule.push(ScheduleItem::Barrier);
            }
            p
        })
        .collect();
    Trace {
        name: "streaming".into(),
        nodes,
        shared_pages: arena.pages(),
        first_toucher: arena.into_first_toucher(),
        programs,
    }
}

/// A never-written lookup table homed on node 0, scanned scatteredly
/// (one line per DSM block) by every other node; node 0 does private
/// work.  Ballast pages keep first-touch homes balanced.
pub fn read_only_table(nodes: usize, table_pages: u64, scans: u32, page_bytes: u64) -> Trace {
    assert!(nodes >= 2);
    let table_bytes = table_pages * page_bytes;
    let mut programs = Vec::new();
    for n in 0..nodes {
        let mut p = NodeProgram::default();
        let mut seg = Segment::new(2);
        if n == 0 {
            seg.push_private(0, true);
        } else {
            let mut a = 0;
            while a < table_bytes {
                seg.push(a, false);
                a += 128;
            }
        }
        let i = p.add_segment(seg);
        for _ in 0..scans {
            p.schedule.push(ScheduleItem::Run(i));
        }
        p.schedule.push(ScheduleItem::Barrier);
        programs.push(p);
    }
    let mut first_toucher = vec![NodeId(0); table_pages as usize];
    for n in 0..nodes {
        first_toucher.extend(vec![NodeId(n as u16); table_pages as usize]);
    }
    Trace {
        name: "read-only-table".into(),
        nodes,
        shared_pages: first_toucher.len() as u64,
        first_toucher,
        programs,
    }
}

/// Two nodes alternately writing the same DSM block (false-sharing /
/// migratory worst case); remaining nodes idle on private work.
pub fn ping_pong(nodes: usize, rounds: u32, page_bytes: u64) -> Trace {
    assert!(nodes >= 2);
    let mut arena = Arena::new(page_bytes);
    let _region = arena.alloc(page_bytes * nodes as u64, |p| {
        NodeId((p % nodes as u64) as u16)
    });
    let programs = (0..nodes)
        .map(|n| {
            let mut p = NodeProgram::default();
            let mut seg = Segment::new(2);
            if n < 2 {
                seg.push(0, true); // both hammer block 0 of page 0
            } else {
                seg.push_private(0, true);
            }
            let i = p.add_segment(seg);
            for _ in 0..rounds {
                p.schedule.push(ScheduleItem::Run(i));
            }
            p.schedule.push(ScheduleItem::Barrier);
            p
        })
        .collect();
    Trace {
        name: "ping-pong".into(),
        nodes,
        shared_pages: arena.pages(),
        first_toucher: arena.into_first_toucher(),
        programs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::profile;

    #[test]
    fn all_micros_build_valid_traces() {
        for t in [
            uniform(4, 4, 500, 0.2, 2, 1, 4096),
            hotspot(4, 4, 2, 0.8, 500, 2, 2, 4096),
            streaming(4, 4, 2, 4096),
            read_only_table(4, 8, 3, 4096),
            ping_pong(4, 50, 4096),
        ] {
            t.validate(4096);
            assert!(t.total_ops() > 0, "{}", t.name);
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let t = hotspot(4, 8, 2, 0.9, 2000, 1, 7, 4096);
        // Count accesses landing in the hot region (last 2 pages).
        let hot_base = 4 * 8 * 4096;
        let seg = &t.programs[0].segments[0];
        let hot = seg.ops.iter().filter(|o| o.addr() >= hot_base).count();
        let frac = hot as f64 / seg.ops.len() as f64;
        assert!((0.8..1.0).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn streaming_is_sequential() {
        let t = streaming(4, 2, 1, 4096);
        let seg = &t.programs[0].segments[0];
        let seq = seg
            .ops
            .windows(2)
            .filter(|w| w[1].addr() == w[0].addr() + 32)
            .count();
        assert!(seq * 10 >= seg.ops.len() * 9);
    }

    #[test]
    fn read_only_table_has_no_shared_writes() {
        let t = read_only_table(4, 8, 2, 4096);
        for p in &t.programs {
            for s in &p.segments {
                assert!(s.ops.iter().all(|o| o.private() || !o.write()));
            }
        }
    }

    #[test]
    fn ping_pong_is_write_shared() {
        let t = ping_pong(4, 10, 4096);
        let w0: Vec<u64> = t.programs[0].segments[0]
            .ops
            .iter()
            .filter(|o| o.write() && !o.private())
            .map(|o| o.addr())
            .collect();
        let w1: Vec<u64> = t.programs[1].segments[0]
            .ops
            .iter()
            .filter(|o| o.write() && !o.private())
            .map(|o| o.addr())
            .collect();
        assert_eq!(w0, w1, "both contenders write the same address");
    }

    #[test]
    fn uniform_touches_most_pages() {
        let t = uniform(4, 4, 4000, 0.1, 1, 3, 4096);
        let prof = profile(&t, 4096);
        assert!(prof.max_remote_pages >= 10);
    }
}
