//! The six benchmark generators of the paper's evaluation: barnes, em3d,
//! fft, lu, ocean, and radix (SPLASH-2 + Split-C em3d).

pub mod barnes;
pub mod em3d;
pub mod fft;
pub mod lu;
pub mod micro;
pub mod ocean;
pub mod radix;

use crate::trace::Trace;

/// The six applications of the paper's Table 5, plus a size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Barnes-Hut N-body (SPLASH-2).
    Barnes,
    /// Electromagnetic 3D (Split-C).
    Em3d,
    /// Six-step FFT (SPLASH-2).
    Fft,
    /// Blocked LU factorization (SPLASH-2; 4 nodes).
    Lu,
    /// Ocean current simulation (SPLASH-2).
    Ocean,
    /// Radix sort (SPLASH-2).
    Radix,
}

impl App {
    /// All six applications, in the paper's presentation order.
    pub const ALL: [App; 6] = [
        App::Barnes,
        App::Em3d,
        App::Fft,
        App::Lu,
        App::Ocean,
        App::Radix,
    ];

    /// Benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            App::Barnes => "barnes",
            App::Em3d => "em3d",
            App::Fft => "fft",
            App::Lu => "lu",
            App::Ocean => "ocean",
            App::Radix => "radix",
        }
    }

    /// Parse a name (as printed by [`App::name`]).
    pub fn parse(s: &str) -> Option<App> {
        App::ALL.iter().copied().find(|a| a.name() == s)
    }

    /// Build the workload at the given size class.
    ///
    /// ```
    /// use ascoma_workloads::{App, SizeClass};
    /// let trace = App::Radix.build(SizeClass::Tiny, 4096);
    /// trace.validate(4096);
    /// assert_eq!(trace.name, "radix");
    /// ```
    pub fn build(self, size: SizeClass, page_bytes: u64) -> Trace {
        match (self, size) {
            (App::Barnes, SizeClass::Tiny) => barnes::BarnesParams::tiny().build(page_bytes),
            (App::Barnes, SizeClass::Default) => barnes::BarnesParams::default().build(page_bytes),
            (App::Barnes, SizeClass::Paper) => barnes::BarnesParams::paper().build(page_bytes),
            (App::Em3d, SizeClass::Tiny) => em3d::Em3dParams::tiny().build(page_bytes),
            (App::Em3d, SizeClass::Default) => em3d::Em3dParams::default().build(page_bytes),
            (App::Em3d, SizeClass::Paper) => em3d::Em3dParams::paper().build(page_bytes),
            (App::Fft, SizeClass::Tiny) => fft::FftParams::tiny().build(page_bytes),
            (App::Fft, SizeClass::Default) => fft::FftParams::default().build(page_bytes),
            (App::Fft, SizeClass::Paper) => fft::FftParams::paper().build(page_bytes),
            (App::Lu, SizeClass::Tiny) => lu::LuParams::tiny().build(page_bytes),
            (App::Lu, SizeClass::Default) => lu::LuParams::default().build(page_bytes),
            (App::Lu, SizeClass::Paper) => lu::LuParams::paper().build(page_bytes),
            (App::Ocean, SizeClass::Tiny) => ocean::OceanParams::tiny().build(page_bytes),
            (App::Ocean, SizeClass::Default) => ocean::OceanParams::default().build(page_bytes),
            (App::Ocean, SizeClass::Paper) => ocean::OceanParams::paper().build(page_bytes),
            (App::Radix, SizeClass::Tiny) => radix::RadixParams::tiny().build(page_bytes),
            (App::Radix, SizeClass::Default) => radix::RadixParams::default().build(page_bytes),
            (App::Radix, SizeClass::Paper) => radix::RadixParams::paper().build(page_bytes),
        }
    }
}

/// Problem-size class for a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Minutes-of-CI scale: unit/integration tests.
    Tiny,
    /// Seconds-per-run scale preserving the paper's page-level shape:
    /// the default for tables, figures and examples.
    Default,
    /// Closest to the paper's published input sizes.
    Paper,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_tiny_valid_traces() {
        for app in App::ALL {
            let t = app.build(SizeClass::Tiny, 4096);
            t.validate(4096);
            assert_eq!(t.name, app.name());
            assert!(t.total_ops() > 0, "{} produced no ops", app.name());
        }
    }

    #[test]
    fn parse_roundtrip() {
        for app in App::ALL {
            assert_eq!(App::parse(app.name()), Some(app));
        }
        assert_eq!(App::parse("nope"), None);
    }

    #[test]
    fn lu_runs_on_four_nodes_others_on_eight() {
        assert_eq!(App::Lu.build(SizeClass::Default, 4096).nodes, 4);
        for app in [App::Barnes, App::Em3d, App::Fft, App::Ocean, App::Radix] {
            assert_eq!(app.build(SizeClass::Default, 4096).nodes, 8);
        }
    }
}
