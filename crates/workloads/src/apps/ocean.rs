//! `ocean` — SPLASH-2 ocean current simulation (paper input: 258x258
//! grid).
//!
//! Structure reproduced: several row-partitioned grids updated with a
//! near-neighbour stencil.  A node's sweep is almost entirely local; only
//! the *boundary rows* of the adjacent partitions are remote, so "even at
//! 90% memory pressure, only ~3% of cache misses are to remote data, and
//! most such accesses can be supplied from a local S-COMA page or the
//! RAC.  As a result, all of the architectures other than pure S-COMA
//! perform within a few percent of one another."

use crate::synth::{sweep, sweep_private, Arena};
use crate::trace::{NodeProgram, ScheduleItem, Segment, Trace};

/// Parameters for the ocean generator.
#[derive(Debug, Clone, Copy)]
pub struct OceanParams {
    /// Compute nodes.
    pub nodes: usize,
    /// Grid rows per node (contiguous partition).
    pub rows_per_node: u64,
    /// Bytes per grid row (columns x 8).
    pub row_bytes: u64,
    /// Number of grids (ocean solves several fields).
    pub grids: u32,
    /// Stencil iterations.
    pub iters: u32,
    /// User compute cycles per access.
    pub compute_per_op: u32,
    /// Access stride for interior sweeps.
    pub stride: u64,
    /// Private scratch bytes swept per iteration.
    pub private_bytes: u64,
}

impl Default for OceanParams {
    fn default() -> Self {
        Self {
            nodes: 8,
            rows_per_node: 32,
            row_bytes: 2048,
            grids: 4,
            iters: 10,
            compute_per_op: 5,
            stride: 64,
            private_bytes: 8 * 1024,
        }
    }
}

impl OceanParams {
    /// A tiny configuration for tests.
    pub fn tiny() -> Self {
        Self {
            nodes: 4,
            rows_per_node: 8,
            grids: 2,
            iters: 2,
            ..Self::default()
        }
    }

    /// Paper-like scale (258x258 grid of doubles, several fields).
    pub fn paper() -> Self {
        Self {
            rows_per_node: 33,
            row_bytes: 258 * 8,
            grids: 6,
            iters: 12,
            ..Self::default()
        }
    }

    /// Build the trace.
    pub fn build(&self, page_bytes: u64) -> Trace {
        assert!(self.nodes >= 2);
        let mut arena = Arena::new(page_bytes);
        let slab_bytes = self.rows_per_node * self.row_bytes;
        let grids: Vec<_> = (0..self.grids)
            .map(|_| arena.alloc_partitioned(slab_bytes * self.nodes as u64, self.nodes))
            .collect();

        let mut programs = Vec::with_capacity(self.nodes);
        for n in 0..self.nodes {
            let mut prog = NodeProgram::default();
            let mut seg = Segment::new(self.compute_per_op);
            for g in &grids {
                let my = g.slab(n, self.nodes, page_bytes);
                // Interior stencil sweep: read + write own rows.
                sweep(
                    &mut seg,
                    my.base,
                    my.bytes.min(slab_bytes),
                    self.stride,
                    false,
                );
                sweep(
                    &mut seg,
                    my.base,
                    my.bytes.min(slab_bytes),
                    self.stride,
                    true,
                );
                // Boundary rows of neighbours (read-only, remote).
                if n > 0 {
                    let up = g.slab(n - 1, self.nodes, page_bytes);
                    let last_row = up.base + up.bytes.saturating_sub(self.row_bytes);
                    sweep(&mut seg, last_row, self.row_bytes, 32, false);
                }
                if n + 1 < self.nodes {
                    let down = g.slab(n + 1, self.nodes, page_bytes);
                    sweep(
                        &mut seg,
                        down.base,
                        self.row_bytes.min(down.bytes),
                        32,
                        false,
                    );
                }
            }
            sweep_private(&mut seg, 0, self.private_bytes, 64, true);
            let si = prog.add_segment(seg);
            for _ in 0..self.iters {
                prog.schedule.push(ScheduleItem::Run(si));
                prog.schedule.push(ScheduleItem::Barrier);
            }
            programs.push(prog);
        }

        let shared_pages = arena.pages();
        Trace {
            name: "ocean".into(),
            nodes: self.nodes,
            shared_pages,
            first_toucher: arena.into_first_toucher(),
            programs,
        }
    }
}

/// Convenience: build with default parameters.
pub fn ocean(page_bytes: u64) -> Trace {
    OceanParams::default().build(page_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::profile;

    #[test]
    fn builds_valid_trace() {
        let t = OceanParams::tiny().build(4096);
        t.validate(4096);
        assert!(t.total_ops() > 0);
    }

    #[test]
    fn remote_traffic_is_tiny() {
        let prof = profile(&OceanParams::default().build(4096), 4096);
        assert!(
            prof.remote_access_fraction < 0.08,
            "remote fraction {} too high for ocean",
            prof.remote_access_fraction
        );
    }

    #[test]
    fn remote_pages_are_only_boundaries() {
        let p = OceanParams::default();
        let prof = profile(&p.build(4096), 4096);
        // At most ~2 boundary rows per grid per side; each row spans
        // <= row_bytes/page + 1 pages.
        let per_row_pages = (p.row_bytes / 4096 + 2) as usize;
        let bound = 2 * p.grids as usize * per_row_pages;
        assert!(
            prof.max_remote_pages <= bound,
            "remote pages {} exceed boundary bound {}",
            prof.max_remote_pages,
            bound
        );
    }

    #[test]
    fn edge_nodes_have_one_neighbour() {
        let p = OceanParams::tiny();
        let prof = profile(&p.build(4096), 4096);
        // Node 0 and the last node touch fewer remote pages than interior
        // nodes (one boundary instead of two).
        let interior = prof.remote_pages[1];
        assert!(prof.remote_pages[0] <= interior);
        assert!(prof.remote_pages[p.nodes - 1] <= interior);
    }

    #[test]
    fn ideal_pressure_is_high() {
        // Almost no remote working set: ocean's ideal pressure is close
        // to 1, i.e. S-COMA-like behavior survives to high pressures.
        let prof = profile(&OceanParams::default().build(4096), 4096);
        assert!(
            prof.ideal_pressure > 0.75,
            "ideal pressure {}",
            prof.ideal_pressure
        );
    }
}
