//! `radix` — SPLASH-2 radix sort (paper input: 2 M keys, radix 1024).
//!
//! Structure reproduced: per-pass histogram sweeps over the node's local
//! key slab, then a *permutation scatter*: every node writes keys into
//! rank-order positions spread over the **entire** destination array.
//! "radix exhibits almost no spatial locality.  Every node accesses every
//! page of shared data at some time during execution … each page is
//! roughly as 'hot' as any other, so the page cache should simply be
//! loaded with some reasonable set of 'hot' pages and left alone."
//!
//! The scatter slots are *block-disjoint* across nodes (real radix writes
//! disjoint rank ranges; block-disjointness reproduces the low
//! write-sharing at DSM-block grain while keeping every node active on
//! every page), and each node revisits its slots several times per pass at
//! widely separated times (multiple keys land in each line), which is what
//! drives per-page refetch counts across the relocation threshold and
//! makes pure S-COMA 2-3x worse than CC-NUMA even at low pressure.

use crate::synth::{sweep, Arena};
use crate::trace::{NodeProgram, ScheduleItem, Segment, Trace};
use ascoma_sim::rng::SimRng;

/// Parameters for the radix generator.
#[derive(Debug, Clone, Copy)]
pub struct RadixParams {
    /// Compute nodes.
    pub nodes: usize,
    /// Destination array pages (the scatter target; also the key volume).
    pub dest_pages: u64,
    /// Sorting passes (one per digit).
    pub passes: u32,
    /// Shuffled revisits of each node's slot set per pass (models multiple
    /// keys landing per line at separated times).
    pub revisits: u32,
    /// User compute cycles per access.
    pub compute_per_op: u32,
    /// RNG seed for scatter orders.
    pub seed: u64,
}

impl Default for RadixParams {
    fn default() -> Self {
        Self {
            nodes: 8,
            dest_pages: 512,
            passes: 4,
            revisits: 6,
            compute_per_op: 2,
            seed: 0x4AD1_0000,
        }
    }
}

impl RadixParams {
    /// A tiny configuration for tests.
    pub fn tiny() -> Self {
        Self {
            nodes: 4,
            dest_pages: 32,
            passes: 1,
            revisits: 2,
            ..Self::default()
        }
    }

    /// Paper-like scale (2 M keys -> ~2048 destination pages).
    pub fn paper() -> Self {
        Self {
            dest_pages: 2048,
            ..Self::default()
        }
    }

    /// Build the trace.
    pub fn build(&self, page_bytes: u64) -> Trace {
        assert!(self.nodes >= 2);
        assert!(self.dest_pages as usize >= self.nodes);
        let mut arena = Arena::new(page_bytes);
        let src = arena.alloc_partitioned(self.dest_pages * page_bytes, self.nodes);
        let dst = arena.alloc_partitioned(self.dest_pages * page_bytes, self.nodes);
        let root = SimRng::seed_from(self.seed);

        let block = 128u64;
        let total_blocks = dst.bytes / block;

        let mut programs = Vec::with_capacity(self.nodes);
        for n in 0..self.nodes {
            let mut rng = root.derive(n as u64);
            let mut prog = NodeProgram::default();
            let my_src = src.slab(n, self.nodes, page_bytes);

            // Histogram: sequential read sweep of the local key slab.
            let mut hist = Segment::new(self.compute_per_op);
            sweep(&mut hist, my_src.base, my_src.bytes, 32, false);
            let hi = prog.add_segment(hist);

            // This node's block-disjoint scatter slots (blocks b with
            // b % nodes == n), grouped by destination page: a bucket's
            // keys land at consecutive ranks, so one "visit" writes the
            // node's blocks of one page back-to-back, and successive
            // visits jump to random pages (no page-level locality — the
            // paper's radix signature).
            let mut page_groups: Vec<Vec<u64>> = {
                let mut groups: std::collections::BTreeMap<u64, Vec<u64>> =
                    std::collections::BTreeMap::new();
                for b in 0..total_blocks {
                    if (b as usize) % self.nodes == n {
                        let addr = dst.base + b * block;
                        groups.entry(addr / page_bytes).or_default().push(addr);
                    }
                }
                groups.into_values().collect()
            };

            let mut permutes = Vec::new();
            for _pass in 0..self.passes {
                let mut seg = Segment::new(self.compute_per_op);
                for rv in 0..self.revisits {
                    rng.shuffle(&mut page_groups);
                    let mut k = 0u64;
                    for group in &page_groups {
                        for &slot in group {
                            // Read the key from the local source slab...
                            let s = my_src.base + ((k * 32) % my_src.bytes);
                            k += 1;
                            seg.push(s, false);
                            // ...and scatter it: write one line of the
                            // slot, rotating through the block's lines
                            // per revisit.
                            let line = (rv as u64 % 4) * 32;
                            seg.push(slot + line, true);
                        }
                    }
                }
                permutes.push(prog.add_segment(seg));
            }

            for &pi in &permutes {
                prog.schedule.push(ScheduleItem::Run(hi));
                prog.schedule.push(ScheduleItem::Barrier);
                prog.schedule.push(ScheduleItem::Run(pi));
                prog.schedule.push(ScheduleItem::Barrier);
            }
            programs.push(prog);
        }

        let shared_pages = arena.pages();
        Trace {
            name: "radix".into(),
            nodes: self.nodes,
            shared_pages,
            first_toucher: arena.into_first_toucher(),
            programs,
        }
    }
}

/// Convenience: build with default parameters.
pub fn radix(page_bytes: u64) -> Trace {
    RadixParams::default().build(page_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::profile;

    #[test]
    fn builds_valid_trace() {
        let t = RadixParams::tiny().build(4096);
        t.validate(4096);
        assert!(t.total_ops() > 0);
    }

    #[test]
    fn every_node_touches_nearly_every_dest_page() {
        let p = RadixParams::default();
        let prof = profile(&p.build(4096), 4096);
        // Destination pages not homed locally are all touched: remote
        // membership approaches dest_pages * (nodes-1)/nodes plus a slice
        // of nothing else.
        let expect = (p.dest_pages as usize) * (p.nodes - 1) / p.nodes;
        for (n, &r) in prof.remote_pages.iter().enumerate() {
            assert!(
                r >= expect - 2,
                "node {n} touches only {r} remote pages, expected ~{expect}"
            );
        }
    }

    #[test]
    fn ideal_pressure_is_low() {
        // The global scatter makes the remote working set huge relative
        // to home pages: radix's ideal pressure is the lowest of the six
        // applications (paper: ~17%).
        let prof = profile(&RadixParams::default().build(4096), 4096);
        assert!(
            prof.ideal_pressure < 0.25,
            "ideal pressure {}",
            prof.ideal_pressure
        );
    }

    #[test]
    fn scatter_slots_are_block_disjoint_across_nodes() {
        let p = RadixParams::tiny();
        let t = p.build(4096);
        let mut seen = std::collections::HashMap::new();
        for (n, prog) in t.programs.iter().enumerate() {
            // Segment 1 is the first permute segment.
            for op in &prog.segments[1].ops {
                if op.write() && !op.private() {
                    let b = op.addr() / 128;
                    if let Some(prev) = seen.insert(b, n) {
                        assert_eq!(prev, n, "block {b} written by nodes {prev} and {n}");
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_has_no_page_level_locality() {
        let t = RadixParams::default().build(4096);
        let seg = &t.programs[0].segments[1];
        let writes: Vec<u64> = seg
            .ops
            .iter()
            .filter(|o| o.write() && !o.private())
            .map(|o| o.addr() / 4096)
            .collect();
        // Within a visit the node's blocks of one page are written
        // back-to-back (a bucket's consecutive ranks), but *visits* jump
        // pages: page transitions must be frequent and non-monotonic.
        let transitions: Vec<(u64, u64)> = writes
            .windows(2)
            .filter(|w| w[0] != w[1])
            .map(|w| (w[0], w[1]))
            .collect();
        assert!(
            transitions.len() * 8 >= writes.len(),
            "too few page jumps: {}/{}",
            transitions.len(),
            writes.len()
        );
        let ascending = transitions.iter().filter(|(a, b)| b == &(a + 1)).count();
        assert!(
            ascending * 4 < transitions.len(),
            "page order too sequential: {ascending}/{}",
            transitions.len()
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = RadixParams::tiny().build(4096);
        let b = RadixParams::tiny().build(4096);
        assert_eq!(a.programs[0].segments[1].ops, b.programs[0].segments[1].ops);
    }
}
