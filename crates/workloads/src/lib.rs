//! Synthetic workload generators for the AS-COMA simulator.
//!
//! The paper evaluates six applications — barnes, em3d, fft, lu, ocean and
//! radix — through execution-driven simulation of their real binaries.
//! This crate substitutes *structure-preserving synthetic generators*
//! (DESIGN.md §2, §7): each produces a [`trace::Trace`] of per-node memory
//! operations whose page-level locality, sharing and hot-page structure
//! match what the paper reports for the original, which is what the five
//! memory architectures differentiate on.
//!
//! * [`trace`] — the trace representation and replay iterator.
//! * [`synth`] — region allocation and access-pattern building blocks.
//! * [`apps`] — the six generators, each with `tiny()` / default /
//!   `paper()` size classes.
//! * [`analyze`] — static profiling (the paper's Table 5 inputs: home
//!   pages, maximum remote pages, ideal pressure).
//! * [`stats`] — deeper static characterization (stride/heat/sharing
//!   distributions).

#![warn(missing_docs)]

pub mod analyze;
pub mod apps;
pub mod stats;
pub mod synth;
pub mod trace;

pub use apps::{App, SizeClass};
pub use trace::{Op, Trace, TraceRunner};
