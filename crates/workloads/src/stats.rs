//! Trace statistics: static characterizations of a workload's memory
//! behavior — read/write mix, stride distribution, page heat, sharing
//! degree — the quantities that predict how the five architectures will
//! treat it before any simulation runs.

use crate::trace::{ScheduleItem, Trace};
use ascoma_sim::hist::Histogram;

/// Static statistics of one trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Total dynamic shared-memory operations.
    pub shared_ops: u64,
    /// Total dynamic private-memory operations.
    pub private_ops: u64,
    /// Dynamic shared writes / shared ops.
    pub write_fraction: f64,
    /// Distribution of |addr_i+1 - addr_i| over consecutive shared
    /// accesses (bytes) — spatial locality at a glance.
    pub stride: Histogram,
    /// Dynamic accesses per shared page ("page heat").
    pub page_heat: Histogram,
    /// Number of distinct nodes touching each touched page ("sharing
    /// degree"): 1 = private-ish, nodes = fully shared.
    pub sharing_degree: Histogram,
    /// Pages written by 2+ nodes (write-sharing; coherence traffic
    /// predictor).
    pub write_shared_pages: u64,
    /// Barriers per node.
    pub barriers: u64,
    /// Lock acquisitions per run (all nodes).
    pub lock_ops: u64,
}

/// Compute [`TraceStats`] for a trace.
pub fn trace_stats(trace: &Trace, page_bytes: u64) -> TraceStats {
    let pages = trace.shared_pages as usize;
    let mut heat = vec![0u64; pages];
    let mut readers_writers: Vec<(u64, u64)> = vec![(0, 0); pages]; // bitmasks
    let mut stride = Histogram::new();
    let mut shared_ops = 0u64;
    let mut private_ops = 0u64;
    let mut writes = 0u64;
    let mut lock_ops = 0u64;

    for (n, prog) in trace.programs.iter().enumerate() {
        let mut mult = vec![0u64; prog.segments.len()];
        for item in &prog.schedule {
            match item {
                ScheduleItem::Run(i) => mult[*i as usize] += 1,
                ScheduleItem::Lock(_) => lock_ops += 1,
                _ => {}
            }
        }
        for (seg, &m) in prog.segments.iter().zip(&mult) {
            if m == 0 {
                continue;
            }
            let mut prev: Option<u64> = None;
            for op in &seg.ops {
                if op.private() {
                    private_ops += m;
                    continue;
                }
                shared_ops += m;
                let pg = (op.addr() / page_bytes) as usize;
                heat[pg] += m;
                if op.write() {
                    writes += m;
                    readers_writers[pg].1 |= 1 << n;
                } else {
                    readers_writers[pg].0 |= 1 << n;
                }
                if let Some(p) = prev {
                    stride.record(op.addr().abs_diff(p));
                }
                prev = Some(op.addr());
            }
        }
    }

    let mut page_heat = Histogram::new();
    let mut sharing = Histogram::new();
    let mut write_shared = 0u64;
    for pg in 0..pages {
        if heat[pg] > 0 {
            page_heat.record(heat[pg]);
            let touchers = (readers_writers[pg].0 | readers_writers[pg].1).count_ones();
            sharing.record(touchers as u64);
            if readers_writers[pg].1.count_ones() >= 2 {
                write_shared += 1;
            }
        }
    }

    TraceStats {
        shared_ops,
        private_ops,
        write_fraction: if shared_ops == 0 {
            0.0
        } else {
            writes as f64 / shared_ops as f64
        },
        stride,
        page_heat,
        sharing_degree: sharing,
        write_shared_pages: write_shared,
        barriers: trace
            .programs
            .first()
            .map(|p| p.barrier_count() as u64)
            .unwrap_or(0),
        lock_ops,
    }
}

/// Render the statistics as a compact block.
pub fn render(name: &str, s: &TraceStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{name}:");
    let _ = writeln!(
        out,
        "  ops: {} shared ({:.1}% writes), {} private; {} barriers/node, {} lock ops",
        s.shared_ops,
        s.write_fraction * 100.0,
        s.private_ops,
        s.barriers,
        s.lock_ops
    );
    let _ = writeln!(out, "  stride bytes      : {}", s.stride.render());
    let _ = writeln!(out, "  page heat         : {}", s.page_heat.render());
    let _ = writeln!(out, "  sharing degree    : {}", s.sharing_degree.render());
    let _ = writeln!(out, "  write-shared pages: {}", s.write_shared_pages);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{micro, App, SizeClass};

    #[test]
    fn counts_are_consistent_with_trace_totals() {
        for app in App::ALL {
            let t = app.build(SizeClass::Tiny, 4096);
            let s = trace_stats(&t, 4096);
            assert_eq!(
                s.shared_ops + s.private_ops,
                t.total_ops(),
                "{}",
                app.name()
            );
            assert!((0.0..=1.0).contains(&s.write_fraction));
        }
    }

    #[test]
    fn streaming_has_tiny_strides() {
        let t = micro::streaming(4, 4, 1, 4096);
        let s = trace_stats(&t, 4096);
        // Almost all strides are exactly 32 bytes.
        let small: u64 = s
            .stride
            .buckets()
            .filter(|((lo, _), _)| *lo <= 32)
            .map(|(_, c)| c)
            .sum();
        assert!(small * 10 >= s.stride.count() * 9);
    }

    #[test]
    fn ping_pong_is_write_shared() {
        let t = micro::ping_pong(4, 10, 4096);
        let s = trace_stats(&t, 4096);
        assert_eq!(s.write_shared_pages, 1);
        assert!(s.write_fraction > 0.4);
    }

    #[test]
    fn read_only_table_is_read_shared_not_write_shared() {
        let t = micro::read_only_table(4, 8, 2, 4096);
        let s = trace_stats(&t, 4096);
        assert_eq!(s.write_shared_pages, 0);
        // Table pages are touched by 3 readers.
        assert!(s.sharing_degree.max() >= 3);
    }

    #[test]
    fn barnes_counts_its_locks() {
        let t = App::Barnes.build(SizeClass::Tiny, 4096);
        let s = trace_stats(&t, 4096);
        assert!(s.lock_ops > 0, "barnes tree build uses locks");
    }

    #[test]
    fn render_mentions_sections() {
        let t = micro::uniform(4, 2, 100, 0.3, 1, 1, 4096);
        let s = trace_stats(&t, 4096);
        let r = render("uniform", &s);
        assert!(r.contains("page heat"));
        assert!(r.contains("sharing degree"));
    }
}
