//! Building blocks for the synthetic workload generators: page-aligned
//! region allocation with first-touch recording, and access-pattern
//! helpers (sweeps, strided reads, scatters).

use crate::trace::Segment;
use ascoma_sim::NodeId;

/// A page-aligned region of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address.
    pub base: u64,
    /// Extent in bytes (page-aligned).
    pub bytes: u64,
}

impl Region {
    /// Byte address of `offset` within the region (bounds-checked in debug).
    #[inline]
    pub fn addr(&self, offset: u64) -> u64 {
        debug_assert!(offset < self.bytes, "offset {offset} out of region");
        self.base + offset
    }

    /// The contiguous sub-slab belonging to `node` when the region is
    /// block-partitioned among `nodes` nodes (page-aligned split).
    pub fn slab(&self, node: usize, nodes: usize, page_bytes: u64) -> Region {
        let pages = self.bytes / page_bytes;
        let per = pages / nodes as u64;
        let extra = pages % nodes as u64;
        // First `extra` nodes get one extra page.
        let start_page = node as u64 * per + (node as u64).min(extra);
        let my_pages = per + if (node as u64) < extra { 1 } else { 0 };
        Region {
            base: self.base + start_page * page_bytes,
            bytes: my_pages * page_bytes,
        }
    }

    /// Number of pages spanned.
    pub fn pages(&self, page_bytes: u64) -> u64 {
        self.bytes / page_bytes
    }
}

/// Page-aligned shared-space allocator that records each page's first
/// toucher (the input to the kernel's first-touch home placement).
#[derive(Debug, Clone)]
pub struct Arena {
    page_bytes: u64,
    first_toucher: Vec<NodeId>,
}

impl Arena {
    /// An empty arena with the given page size.
    pub fn new(page_bytes: u64) -> Self {
        assert!(page_bytes.is_power_of_two());
        Self {
            page_bytes,
            first_toucher: Vec::new(),
        }
    }

    /// Allocate `bytes` (rounded up to whole pages); `toucher(i)` names the
    /// node that first touches the `i`-th page of the new region.
    pub fn alloc(&mut self, bytes: u64, toucher: impl Fn(u64) -> NodeId) -> Region {
        let pages = bytes.div_ceil(self.page_bytes).max(1);
        let base = self.first_toucher.len() as u64 * self.page_bytes;
        for i in 0..pages {
            self.first_toucher.push(toucher(i));
        }
        Region {
            base,
            bytes: pages * self.page_bytes,
        }
    }

    /// Allocate a region block-partitioned among `nodes` nodes, each page
    /// first-touched by its owning node (per [`Region::slab`] boundaries).
    pub fn alloc_partitioned(&mut self, bytes: u64, nodes: usize) -> Region {
        let pages = bytes.div_ceil(self.page_bytes).max(1);
        let per = pages / nodes as u64;
        let extra = pages % nodes as u64;
        let owner = move |i: u64| {
            // Invert the slab split: find the node whose page range holds i.
            let mut n = 0u64;
            let mut start = 0u64;
            loop {
                let len = per + if n < extra { 1 } else { 0 };
                if i < start + len || n as usize == nodes - 1 {
                    return NodeId(n as u16);
                }
                start += len;
                n += 1;
            }
        };
        self.alloc(pages * self.page_bytes, owner)
    }

    /// Total pages allocated so far.
    pub fn pages(&self) -> u64 {
        self.first_toucher.len() as u64
    }

    /// Consume the arena, yielding the first-toucher table.
    pub fn into_first_toucher(self) -> Vec<NodeId> {
        self.first_toucher
    }

    /// The page size.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }
}

/// Append a strided sweep of `[base, base + bytes)` to `seg`.
pub fn sweep(seg: &mut Segment, base: u64, bytes: u64, stride: u64, write: bool) {
    debug_assert!(stride > 0);
    let mut a = base;
    while a < base + bytes {
        seg.push(a, write);
        a += stride;
    }
}

/// Append a strided sweep over a region slice `[offset, offset + bytes)`.
pub fn sweep_region(
    seg: &mut Segment,
    r: Region,
    offset: u64,
    bytes: u64,
    stride: u64,
    write: bool,
) {
    debug_assert!(offset + bytes <= r.bytes);
    sweep(seg, r.base + offset, bytes, stride, write);
}

/// Append a private-memory sweep (node-local scratch/stack traffic).
pub fn sweep_private(seg: &mut Segment, offset: u64, bytes: u64, stride: u64, write: bool) {
    let mut a = offset;
    while a < offset + bytes {
        seg.push_private(a, write);
        a += stride;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascoma_sim::NodeId;

    #[test]
    fn arena_allocates_page_aligned_consecutive() {
        let mut a = Arena::new(4096);
        let r1 = a.alloc(100, |_| NodeId(0));
        let r2 = a.alloc(8192, |_| NodeId(1));
        assert_eq!(r1.base, 0);
        assert_eq!(r1.bytes, 4096);
        assert_eq!(r2.base, 4096);
        assert_eq!(r2.bytes, 8192);
        assert_eq!(a.pages(), 3);
        assert_eq!(
            a.into_first_toucher(),
            vec![NodeId(0), NodeId(1), NodeId(1)]
        );
    }

    #[test]
    fn partitioned_alloc_assigns_owners_by_slab() {
        let mut a = Arena::new(4096);
        let r = a.alloc_partitioned(10 * 4096, 4);
        // 10 pages over 4 nodes: 3,3,2,2.
        let ft = a.into_first_toucher();
        assert_eq!(ft.len(), 10);
        assert_eq!(ft[..3], vec![NodeId(0); 3][..]);
        assert_eq!(ft[3..6], vec![NodeId(1); 3][..]);
        assert_eq!(ft[6..8], vec![NodeId(2); 2][..]);
        assert_eq!(ft[8..10], vec![NodeId(3); 2][..]);
        // Slab boundaries must agree with the owner assignment.
        let s0 = r.slab(0, 4, 4096);
        assert_eq!(s0.base, 0);
        assert_eq!(s0.pages(4096), 3);
        let s2 = r.slab(2, 4, 4096);
        assert_eq!(s2.base, 6 * 4096);
        assert_eq!(s2.pages(4096), 2);
    }

    #[test]
    fn slab_partition_covers_region_exactly() {
        let r = Region {
            base: 0,
            bytes: 13 * 4096,
        };
        let mut total = 0;
        let mut next = 0;
        for n in 0..5 {
            let s = r.slab(n, 5, 4096);
            assert_eq!(s.base, next);
            next = s.base + s.bytes;
            total += s.pages(4096);
        }
        assert_eq!(total, 13);
    }

    #[test]
    fn sweep_strides_through_range() {
        let mut s = Segment::new(0);
        sweep(&mut s, 64, 128, 32, false);
        let addrs: Vec<u64> = s.ops.iter().map(|o| o.addr()).collect();
        assert_eq!(addrs, vec![64, 96, 128, 160]);
        assert!(s.ops.iter().all(|o| !o.write() && !o.private()));
    }

    #[test]
    fn sweep_private_marks_ops_private() {
        let mut s = Segment::new(0);
        sweep_private(&mut s, 0, 64, 32, true);
        assert_eq!(s.ops.len(), 2);
        assert!(s.ops.iter().all(|o| o.private() && o.write()));
    }

    #[test]
    fn zero_byte_alloc_still_gets_a_page() {
        let mut a = Arena::new(4096);
        let r = a.alloc(0, |_| NodeId(0));
        assert_eq!(r.bytes, 4096);
    }
}
