//! The trace representation: per-node programs of memory operations.
//!
//! The paper drives its simulator with real SPLASH-2 binaries through an
//! execution-driven PA-RISC interpreter.  We substitute *synthetic
//! reference generators* that reproduce each application's page-level
//! sharing and locality structure (see DESIGN.md §2); each generator
//! produces a [`Trace`]: one [`NodeProgram`] per node, built from reusable
//! [`Segment`]s of packed memory operations sequenced by a [`ScheduleItem`]
//! list with barriers.
//!
//! Segments are *reused* across iterations (a program loop body is one
//! segment scheduled many times), which keeps memory proportional to the
//! static access pattern, not the dynamic instruction count — the same
//! economy a real program's loop structure provides.

use ascoma_sim::addr::VAddr;
use ascoma_sim::NodeId;

/// One memory operation, packed into a `u64`:
/// bits 2.. = byte address, bit 1 = private, bit 0 = write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedOp(pub u64);

impl PackedOp {
    /// Pack an operation.
    #[inline]
    pub fn new(addr: u64, write: bool, private: bool) -> Self {
        debug_assert!(addr < (1 << 62));
        PackedOp(addr << 2 | (private as u64) << 1 | write as u64)
    }

    /// Byte address.
    #[inline]
    pub fn addr(self) -> u64 {
        self.0 >> 2
    }

    /// Whether the operation is a store.
    #[inline]
    pub fn write(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether the operation targets node-private memory.
    #[inline]
    pub fn private(self) -> bool {
        self.0 & 2 != 0
    }
}

/// A reusable run of operations with uniform interleaved compute.
#[derive(Debug, Clone, Default)]
pub struct Segment {
    /// User-instruction cycles executed before each operation.
    pub compute_per_op: u32,
    /// The operations, in program order.
    pub ops: Vec<PackedOp>,
}

impl Segment {
    /// A segment with `compute_per_op` cycles of work per operation.
    pub fn new(compute_per_op: u32) -> Self {
        Self {
            compute_per_op,
            ops: Vec::new(),
        }
    }

    /// Append a shared-memory operation.
    #[inline]
    pub fn push(&mut self, addr: u64, write: bool) {
        self.ops.push(PackedOp::new(addr, write, false));
    }

    /// Append a private-memory operation (`offset` within the node's
    /// private region).
    #[inline]
    pub fn push_private(&mut self, offset: u64, write: bool) {
        self.ops.push(PackedOp::new(offset, write, true));
    }
}

/// One step of a node's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleItem {
    /// Execute segment `.0` of the node's segment table.
    Run(u32),
    /// Pure computation of `.0` cycles (no memory operations).
    Compute(u64),
    /// Global barrier: wait for all nodes.
    Barrier,
    /// Acquire mutual-exclusion lock `.0` (blocks while held elsewhere).
    Lock(u32),
    /// Release lock `.0` (must be held by this node).
    Unlock(u32),
}

/// The complete program of one node.
#[derive(Debug, Clone, Default)]
pub struct NodeProgram {
    /// Segment table.
    pub segments: Vec<Segment>,
    /// Execution order over the segment table.
    pub schedule: Vec<ScheduleItem>,
}

impl NodeProgram {
    /// Add a segment, returning its index for scheduling.
    pub fn add_segment(&mut self, seg: Segment) -> u32 {
        self.segments.push(seg);
        (self.segments.len() - 1) as u32
    }

    /// Number of barriers in the schedule.
    pub fn barrier_count(&self) -> usize {
        self.schedule
            .iter()
            .filter(|s| matches!(s, ScheduleItem::Barrier))
            .count()
    }

    /// Total dynamic operation count of the schedule.
    pub fn dynamic_ops(&self) -> u64 {
        self.schedule
            .iter()
            .map(|s| match s {
                ScheduleItem::Run(i) => self.segments[*i as usize].ops.len() as u64,
                _ => 0,
            })
            .sum()
    }
}

/// A complete synthetic workload.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Workload name (paper benchmark it models).
    pub name: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Shared pages in the global address space.
    pub shared_pages: u64,
    /// First toucher of every shared page (input to home allocation).
    pub first_toucher: Vec<NodeId>,
    /// One program per node.
    pub programs: Vec<NodeProgram>,
}

/// A structural defect in a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// `programs.len() != nodes`.
    ProgramCount {
        /// Declared node count.
        nodes: usize,
        /// Programs supplied.
        programs: usize,
    },
    /// `first_toucher` does not cover every page.
    ToucherCoverage {
        /// Declared shared pages.
        pages: u64,
        /// Touchers supplied.
        touchers: usize,
    },
    /// A first toucher names a node outside `0..nodes`.
    ToucherOutOfRange {
        /// Page with the bad toucher.
        page: u64,
    },
    /// Two nodes disagree on barrier count (deadlock at run time).
    BarrierMismatch {
        /// Offending node.
        node: usize,
        /// Its barrier count.
        got: usize,
        /// Node 0's barrier count.
        expected: usize,
    },
    /// A schedule references a segment index that does not exist.
    BadSegmentIndex {
        /// Offending node.
        node: usize,
        /// The out-of-range index.
        index: u32,
    },
    /// A shared address lies outside the declared page space.
    AddressOutOfSpace {
        /// Offending node.
        node: usize,
        /// The address.
        addr: u64,
    },
    /// A lock is acquired twice, released unheld, or never released.
    LockMisuse {
        /// Offending node.
        node: usize,
        /// The lock id.
        lock: u32,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::ProgramCount { nodes, programs } => {
                write!(f, "{programs} programs for {nodes} nodes")
            }
            TraceError::ToucherCoverage { pages, touchers } => {
                write!(f, "{touchers} first-touchers for {pages} pages")
            }
            TraceError::ToucherOutOfRange { page } => {
                write!(f, "page {page}: first toucher out of range")
            }
            TraceError::BarrierMismatch {
                node,
                got,
                expected,
            } => {
                write!(f, "node {node}: {got} barriers, node 0 has {expected}")
            }
            TraceError::BadSegmentIndex { node, index } => {
                write!(f, "node {node}: schedule references segment {index}")
            }
            TraceError::AddressOutOfSpace { node, addr } => {
                write!(f, "node {node}: shared address {addr:#x} out of space")
            }
            TraceError::LockMisuse { node, lock } => {
                write!(
                    f,
                    "node {node}: lock {lock} misused (double acquire, unheld release, or leak)"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Validate structural invariants, returning the first defect found.
    pub fn try_validate(&self, page_bytes: u64) -> Result<(), TraceError> {
        if self.programs.len() != self.nodes {
            return Err(TraceError::ProgramCount {
                nodes: self.nodes,
                programs: self.programs.len(),
            });
        }
        if self.first_toucher.len() != self.shared_pages as usize {
            return Err(TraceError::ToucherCoverage {
                pages: self.shared_pages,
                touchers: self.first_toucher.len(),
            });
        }
        for (pg, t) in self.first_toucher.iter().enumerate() {
            if t.idx() >= self.nodes {
                return Err(TraceError::ToucherOutOfRange { page: pg as u64 });
            }
        }
        let barriers = self.programs[0].barrier_count();
        let limit = self.shared_pages * page_bytes;
        for (n, p) in self.programs.iter().enumerate() {
            if p.barrier_count() != barriers {
                return Err(TraceError::BarrierMismatch {
                    node: n,
                    got: p.barrier_count(),
                    expected: barriers,
                });
            }
            for item in &p.schedule {
                if let ScheduleItem::Run(i) = item {
                    if *i as usize >= p.segments.len() {
                        return Err(TraceError::BadSegmentIndex { node: n, index: *i });
                    }
                }
            }
            for seg in &p.segments {
                for op in &seg.ops {
                    if !op.private() && op.addr() >= limit {
                        return Err(TraceError::AddressOutOfSpace {
                            node: n,
                            addr: op.addr(),
                        });
                    }
                }
            }
            let mut held: std::collections::BTreeSet<u32> = Default::default();
            for item in &p.schedule {
                let misuse = match item {
                    ScheduleItem::Lock(l) => (!held.insert(*l)).then_some(*l),
                    ScheduleItem::Unlock(l) => (!held.remove(l)).then_some(*l),
                    _ => None,
                };
                if let Some(lock) = misuse {
                    return Err(TraceError::LockMisuse { node: n, lock });
                }
            }
            if let Some(&l) = held.iter().next() {
                return Err(TraceError::LockMisuse { node: n, lock: l });
            }
        }
        Ok(())
    }

    /// Validate structural invariants (see [`Trace::try_validate`]),
    /// panicking with the defect description on violation — the
    /// convenient form for generators and tests.
    pub fn validate(&self, page_bytes: u64) {
        if let Err(e) = self.try_validate(page_bytes) {
            panic!("invalid trace '{}': {e}", self.name);
        }
    }

    /// Total dynamic operations across all nodes.
    pub fn total_ops(&self) -> u64 {
        self.programs.iter().map(NodeProgram::dynamic_ops).sum()
    }
}

/// The operation stream of one node, produced by replaying its program.
///
/// This is the interface the machine consumes: a pull-based iterator of
/// [`Op`]s.
#[derive(Debug, Clone)]
pub struct TraceRunner<'a> {
    program: &'a NodeProgram,
    sched_idx: usize,
    op_idx: usize,
    /// Ops of the segment currently being replayed (empty between
    /// segments).  Caching the slice keeps the per-op path to one bounds
    /// check instead of schedule → segment table → ops re-resolution.
    cur_ops: &'a [PackedOp],
    /// `compute_per_op` of the current segment.
    cur_compute: u32,
}

/// An operation delivered to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A memory access, preceded by `pre_compute` cycles of user work.
    Access {
        /// Shared-space byte address (or private-region offset).
        addr: VAddr,
        /// Store?
        write: bool,
        /// Private (node-local, non-shared) memory?
        private: bool,
        /// User-instruction cycles executed before the access.
        pre_compute: u32,
    },
    /// Pure computation.
    Compute(u64),
    /// Global barrier.
    Barrier,
    /// Acquire lock `.0`.
    Lock(u32),
    /// Release lock `.0`.
    Unlock(u32),
}

impl<'a> TraceRunner<'a> {
    /// Start replaying `program` from the beginning.
    pub fn new(program: &'a NodeProgram) -> Self {
        Self {
            program,
            sched_idx: 0,
            op_idx: 0,
            cur_ops: &[],
            cur_compute: 0,
        }
    }

    #[inline]
    fn access(op: PackedOp, pre_compute: u32) -> Op {
        Op::Access {
            addr: VAddr(op.addr()),
            write: op.write(),
            private: op.private(),
            pre_compute,
        }
    }

    /// The next operation, or `None` when the program is complete.
    #[allow(clippy::should_implement_trait)] // borrowed iterator; keep inherent
    #[inline]
    pub fn next(&mut self) -> Option<Op> {
        // Fast path: still inside the current segment.
        if let Some(&op) = self.cur_ops.get(self.op_idx) {
            self.op_idx += 1;
            return Some(Self::access(op, self.cur_compute));
        }
        self.cur_ops = &[];
        loop {
            let item = self.program.schedule.get(self.sched_idx)?;
            self.sched_idx += 1;
            match *item {
                ScheduleItem::Run(seg_idx) => {
                    let seg = &self.program.segments[seg_idx as usize];
                    if let Some(&op) = seg.ops.first() {
                        self.cur_ops = &seg.ops;
                        self.cur_compute = seg.compute_per_op;
                        self.op_idx = 1;
                        return Some(Self::access(op, seg.compute_per_op));
                    }
                }
                ScheduleItem::Compute(c) => return Some(Op::Compute(c)),
                ScheduleItem::Barrier => return Some(Op::Barrier),
                ScheduleItem::Lock(l) => return Some(Op::Lock(l)),
                ScheduleItem::Unlock(l) => return Some(Op::Unlock(l)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_op_roundtrip() {
        let op = PackedOp::new(0xDEAD_BEE0, true, false);
        assert_eq!(op.addr(), 0xDEAD_BEE0);
        assert!(op.write());
        assert!(!op.private());
        let op2 = PackedOp::new(12345, false, true);
        assert!(!op2.write());
        assert!(op2.private());
        assert_eq!(op2.addr(), 12345);
    }

    fn tiny_program() -> NodeProgram {
        let mut p = NodeProgram::default();
        let mut s = Segment::new(10);
        s.push(0, false);
        s.push(32, true);
        let i = p.add_segment(s);
        p.schedule = vec![
            ScheduleItem::Run(i),
            ScheduleItem::Barrier,
            ScheduleItem::Run(i),
            ScheduleItem::Compute(500),
        ];
        p
    }

    #[test]
    fn runner_replays_schedule_in_order() {
        let p = tiny_program();
        let mut r = TraceRunner::new(&p);
        let mut got = Vec::new();
        while let Some(op) = r.next() {
            got.push(op);
        }
        assert_eq!(got.len(), 6); // 2 ops + barrier + 2 ops + compute
        assert!(matches!(got[0], Op::Access { write: false, .. }));
        assert!(matches!(got[1], Op::Access { write: true, .. }));
        assert_eq!(got[2], Op::Barrier);
        assert_eq!(got[5], Op::Compute(500));
    }

    #[test]
    fn runner_reuses_segments() {
        let p = tiny_program();
        assert_eq!(p.dynamic_ops(), 4);
        assert_eq!(p.barrier_count(), 1);
    }

    #[test]
    fn empty_program_yields_nothing() {
        let p = NodeProgram::default();
        let mut r = TraceRunner::new(&p);
        assert_eq!(r.next(), None);
        assert_eq!(r.next(), None);
    }

    #[test]
    fn trace_validate_accepts_consistent_trace() {
        let t = Trace {
            name: "t".into(),
            nodes: 2,
            shared_pages: 1,
            first_toucher: vec![NodeId(0)],
            programs: vec![tiny_program(), tiny_program()],
        };
        t.validate(4096);
    }

    #[test]
    #[should_panic(expected = "barriers")]
    fn trace_validate_rejects_mismatched_barriers() {
        let mut p2 = tiny_program();
        p2.schedule.push(ScheduleItem::Barrier);
        let t = Trace {
            name: "t".into(),
            nodes: 2,
            shared_pages: 1,
            first_toucher: vec![NodeId(0)],
            programs: vec![tiny_program(), p2],
        };
        t.validate(4096);
    }

    #[test]
    #[should_panic(expected = "out of space")]
    fn trace_validate_rejects_out_of_space_address() {
        let mut p = NodeProgram::default();
        let mut s = Segment::new(0);
        s.push(4096, false); // page 1, but only 1 page declared
        let i = p.add_segment(s);
        p.schedule = vec![ScheduleItem::Run(i)];
        let t = Trace {
            name: "t".into(),
            nodes: 1,
            shared_pages: 1,
            first_toucher: vec![NodeId(0)],
            programs: vec![p],
        };
        t.validate(4096);
    }

    #[test]
    fn try_validate_reports_each_defect_kind() {
        use super::TraceError;
        let good = Trace {
            name: "t".into(),
            nodes: 1,
            shared_pages: 1,
            first_toucher: vec![NodeId(0)],
            programs: vec![NodeProgram::default()],
        };
        assert_eq!(good.try_validate(4096), Ok(()));

        let mut t = good.clone();
        t.programs.clear();
        assert!(matches!(
            t.try_validate(4096),
            Err(TraceError::ProgramCount { .. })
        ));

        let mut t = good.clone();
        t.first_toucher.clear();
        assert!(matches!(
            t.try_validate(4096),
            Err(TraceError::ToucherCoverage { .. })
        ));

        let mut t = good.clone();
        t.first_toucher = vec![NodeId(9)];
        assert!(matches!(
            t.try_validate(4096),
            Err(TraceError::ToucherOutOfRange { page: 0 })
        ));

        let mut t = good.clone();
        t.programs[0].schedule.push(ScheduleItem::Run(5));
        assert!(matches!(
            t.try_validate(4096),
            Err(TraceError::BadSegmentIndex { node: 0, index: 5 })
        ));

        let mut t = good.clone();
        let mut seg = Segment::new(0);
        seg.push(4096, false);
        let i = t.programs[0].add_segment(seg);
        t.programs[0].schedule.push(ScheduleItem::Run(i));
        assert!(matches!(
            t.try_validate(4096),
            Err(TraceError::AddressOutOfSpace {
                node: 0,
                addr: 4096
            })
        ));

        let mut t = good.clone();
        t.programs[0].schedule.push(ScheduleItem::Lock(2));
        t.programs[0].schedule.push(ScheduleItem::Lock(2));
        assert!(matches!(
            t.try_validate(4096),
            Err(TraceError::LockMisuse { node: 0, lock: 2 })
        ));
    }

    #[test]
    fn trace_errors_display_usefully() {
        use super::TraceError;
        let msgs = [
            TraceError::ProgramCount {
                nodes: 2,
                programs: 1,
            }
            .to_string(),
            TraceError::BarrierMismatch {
                node: 1,
                got: 2,
                expected: 3,
            }
            .to_string(),
            TraceError::LockMisuse { node: 0, lock: 7 }.to_string(),
        ];
        assert!(msgs[0].contains("programs"));
        assert!(msgs[1].contains("barriers"));
        assert!(msgs[2].contains("lock 7"));
    }

    #[test]
    fn compute_only_schedule() {
        let p = NodeProgram {
            schedule: vec![ScheduleItem::Compute(1), ScheduleItem::Compute(2)],
            ..Default::default()
        };
        let mut r = TraceRunner::new(&p);
        assert_eq!(r.next(), Some(Op::Compute(1)));
        assert_eq!(r.next(), Some(Op::Compute(2)));
        assert_eq!(r.next(), None);
    }
}
