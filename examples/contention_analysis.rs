//! Derived-metric analysis: measured (contended) latencies vs the
//! zero-contention minimums, protocol transaction mix, and node
//! imbalance for one run.
//!
//! ```text
//! cargo run --release --example contention_analysis
//! cargo run --release --example contention_analysis -- barnes 0.7
//! ```

use ascoma::analysis::format_analysis;
use ascoma::machine::simulate;
use ascoma::probe::probe_table4;
use ascoma::{report, Arch, SimConfig};
use ascoma_workloads::{App, SizeClass};

fn main() {
    let mut args = std::env::args().skip(1);
    let app = args
        .next()
        .map(|s| App::parse(&s).unwrap_or_else(|| panic!("unknown app '{s}'")))
        .unwrap_or(App::Em3d);
    let pressure: f64 = args
        .next()
        .map(|s| s.parse().expect("pressure must be a number"))
        .unwrap_or(0.5);

    let cfg = SimConfig::at_pressure(pressure);
    let minimums = probe_table4(&cfg);
    println!(
        "zero-contention minimums: L1 {:.0}, local {:.0}, RAC {:.0}, remote {:.0} cycles\n",
        minimums.l1_hit, minimums.local_memory, minimums.rac, minimums.remote_memory
    );

    let trace = app.build(SizeClass::Default, cfg.geometry.page_bytes());
    for arch in [Arch::CcNuma, Arch::Scoma, Arch::AsComa] {
        let r = simulate(&trace, arch, &cfg);
        print!("{}", format_analysis(&r));
    }
    println!(
        "\nThe measured averages sit above the minimums — the gap is bus, bank\n\
         and network-port queueing, which the paper notes is \"considerably\n\
         higher than this minimum because of contention\"."
    );

    // Protocol mix for the AS-COMA run.
    let r = simulate(&trace, Arch::AsComa, &cfg);
    println!("\n{}", report::proto_table(std::slice::from_ref(&r)));
}
