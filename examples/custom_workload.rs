//! Build a custom workload against the public trace API and run it on
//! two architectures.
//!
//! The scenario: a producer/consumer pipeline where node 0 owns a shared
//! buffer that all other nodes repeatedly scan — a textbook hot-home
//! bottleneck.  S-COMA-style replication should relieve the home node's
//! memory system; CC-NUMA keeps hammering it remotely.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use ascoma::machine::simulate;
use ascoma::{report, Arch, SimConfig};
use ascoma_sim::NodeId;
use ascoma_workloads::synth::{sweep, Arena};
use ascoma_workloads::trace::{NodeProgram, ScheduleItem, Segment, Trace};

fn build(nodes: usize, buffer_pages: u64, rounds: u32, page_bytes: u64) -> Trace {
    let mut arena = Arena::new(page_bytes);
    // The shared buffer lives on node 0.
    let buffer = arena.alloc(buffer_pages * page_bytes, |_| NodeId(0));
    // Give every node some local pages too, so homes stay balanced
    // enough for the first-touch cap.
    let locals: Vec<_> = (0..nodes)
        .map(|n| arena.alloc(buffer_pages * page_bytes, move |_| NodeId(n as u16)))
        .collect();

    let mut programs = Vec::new();
    for (n, local) in locals.iter().enumerate() {
        let mut prog = NodeProgram::default();
        let mut seg = Segment::new(4);
        if n == 0 {
            // Producer: rewrite the buffer each round.
            sweep(&mut seg, buffer.base, buffer.bytes, 32, true);
        } else {
            // Consumers: scan the buffer twice per round (the second scan
            // is where page-cache replication pays), then do local work.
            sweep(&mut seg, buffer.base, buffer.bytes, 32, false);
            sweep(&mut seg, buffer.base, buffer.bytes, 32, false);
            sweep(&mut seg, local.base, local.bytes, 32, true);
        }
        let i = prog.add_segment(seg);
        for _ in 0..rounds {
            prog.schedule.push(ScheduleItem::Run(i));
            prog.schedule.push(ScheduleItem::Barrier);
        }
        programs.push(prog);
    }

    let shared_pages = arena.pages();
    Trace {
        name: "producer-consumer".into(),
        nodes,
        shared_pages,
        first_toucher: arena.into_first_toucher(),
        programs,
    }
}

fn main() {
    let cfg = SimConfig::at_pressure(0.3);
    let trace = build(8, 16, 8, cfg.geometry.page_bytes());
    trace.validate(cfg.geometry.page_bytes());
    println!(
        "custom workload: {} ({} shared pages, {} ops)\n",
        trace.name,
        trace.shared_pages,
        trace.total_ops()
    );
    let cc = simulate(&trace, Arch::CcNuma, &cfg);
    let asc = simulate(&trace, Arch::AsComa, &cfg);
    println!("{}", report::summary_line(&cc));
    println!("{}", report::summary_line(&asc));
    println!(
        "\nAS-COMA runs in {:.2}x the CC-NUMA time: the consumers' second \
         scans hit their\nlocal page caches instead of re-crossing the \
         network to node 0.",
        asc.relative_to(&cc)
    );
}
