//! Memory-pressure sweep: reproduce the paper's core experiment for one
//! application — execution time of each architecture relative to CC-NUMA
//! as memory pressure rises from 10% to 90%.
//!
//! ```text
//! cargo run --release --example memory_pressure_sweep            # radix
//! cargo run --release --example memory_pressure_sweep -- barnes
//! ```

use ascoma::experiments::{run_figure_on, PAPER_PRESSURES};
use ascoma::{report, SimConfig};
use ascoma_workloads::{App, SizeClass};

fn main() {
    let app = std::env::args()
        .nth(1)
        .map(|s| App::parse(&s).unwrap_or_else(|| panic!("unknown app '{s}'")))
        .unwrap_or(App::Radix);
    let cfg = SimConfig::default();
    let trace = app.build(SizeClass::Default, cfg.geometry.page_bytes());
    let data = run_figure_on(&trace, &PAPER_PRESSURES, &cfg);
    print!("{}", report::figure(&data));

    // Pull out the paper's headline comparison: AS-COMA vs the other
    // hybrids at the lowest and highest pressures.
    let pick = |name: &str, p: f64| {
        data.bars
            .iter()
            .find(|b| b.run.arch.name() == name && (b.run.pressure - p).abs() < 1e-9)
            .map(|b| b.relative_time)
    };
    if let (Some(a_lo), Some(r_lo), Some(a_hi), Some(r_hi)) = (
        pick("ASCOMA", 0.1),
        pick("RNUMA", 0.1),
        pick("ASCOMA", 0.9),
        pick("RNUMA", 0.9),
    ) {
        println!(
            "\nAS-COMA vs R-NUMA on {}: {:+.1}% at 10% pressure, {:+.1}% at 90% pressure",
            data.app,
            (r_lo / a_lo - 1.0) * 100.0,
            (r_hi / a_hi - 1.0) * 100.0
        );
    }
}
