//! Quickstart: simulate one workload on all five memory architectures
//! and print where the time and the misses went.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ascoma::machine::simulate;
use ascoma::{report, Arch, SimConfig};
use ascoma_workloads::{App, SizeClass};

fn main() {
    // The machine of the paper's Section 4, at 50% memory pressure:
    // half of each node's DRAM holds home pages, the rest is available
    // to the S-COMA page cache.
    let cfg = SimConfig::at_pressure(0.5);

    // em3d: the paper's poster child — hot remote pages that fit in the
    // page cache at low pressure and thrash hybrids at high pressure.
    let trace = App::Em3d.build(SizeClass::Default, cfg.geometry.page_bytes());
    println!(
        "workload: {} ({} nodes, {} shared pages, {} memory operations)\n",
        trace.name,
        trace.nodes,
        trace.shared_pages,
        trace.total_ops()
    );

    let baseline = simulate(&trace, Arch::CcNuma, &cfg);
    for arch in Arch::ALL {
        let r = simulate(&trace, arch, &cfg);
        println!(
            "{}  (x{:.3} of CC-NUMA)",
            report::summary_line(&r),
            r.relative_to(&baseline)
        );
    }

    println!(
        "\nAt 50% pressure the S-COMA-like architectures satisfy remote \
         conflict misses\nfrom the local page cache; CC-NUMA pays a remote \
         access for each."
    );
}
