//! The read-only replication extension (paper §2.2): a lookup table that
//! is never written gets replicated into every reader's local memory;
//! the moment somebody writes it, every replica collapses back to a
//! plain CC-NUMA mapping.
//!
//! ```text
//! cargo run --release --example readonly_replication
//! ```

use ascoma::machine::simulate;
use ascoma::{report, Arch, PolicyParams, SimConfig};
use ascoma_workloads::apps::micro;

fn main() {
    let base = SimConfig::at_pressure(0.3);
    let replicated = SimConfig {
        policy: PolicyParams {
            replicate_read_only: true,
            ..PolicyParams::default()
        },
        ..base
    };

    let table = micro::read_only_table(8, 32, 8, base.geometry.page_bytes());
    println!(
        "lookup table: {} pages on node 0, scanned 8x by 7 readers\n",
        32
    );

    let off = simulate(&table, Arch::CcNuma, &base);
    let on = simulate(&table, Arch::CcNuma, &replicated);
    println!("plain CC-NUMA      : {}", report::summary_line(&off));
    println!("with replication   : {}", report::summary_line(&on));
    println!(
        "\n{} replicas formed; every repeat scan was served from local DRAM.",
        on.kernel.replications
    );
    println!(
        "Speedup: {:.2}x  (remote misses {} -> {})",
        off.cycles as f64 / on.cycles as f64,
        off.miss.remote(),
        on.miss.remote()
    );
    println!(
        "\nThe same flag on the six paper benchmarks changes nothing: every\n\
         shared page eventually gets written, so replicas collapse — exactly\n\
         the paper's point that replication only helps read-only pages,\n\
         which is why the hybrids' coherent page cache is the general answer."
    );
}
