//! Watch AS-COMA's thrashing detector work: run radix at increasing
//! pressures and print the back-off state the policy reached — daemon
//! failures, threshold raises, the final per-node refetch thresholds,
//! and the resulting page-movement counts, next to R-NUMA's churn.
//!
//! ```text
//! cargo run --release --example thrashing_backoff
//! ```

use ascoma::machine::simulate;
use ascoma::{Arch, SimConfig};
use ascoma_workloads::{App, SizeClass};

fn main() {
    let cfg0 = SimConfig::default();
    let trace = App::Radix.build(SizeClass::Default, cfg0.geometry.page_bytes());
    println!(
        "radix, {} nodes — AS-COMA back-off vs R-NUMA churn\n",
        trace.nodes
    );
    println!(
        "{:>6} | {:>9} {:>9} {:>10} {:>16} | {:>9} {:>9}",
        "press", "AS upgr", "AS fail", "AS raises", "AS thresholds", "RN upgr", "RN dngr"
    );
    for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let cfg = SimConfig {
            pressure: p,
            ..cfg0
        };
        let a = simulate(&trace, Arch::AsComa, &cfg);
        let r = simulate(&trace, Arch::RNuma, &cfg);
        let tmin = a.final_thresholds.iter().min().copied().unwrap_or(0);
        let tmax = a.final_thresholds.iter().max().copied().unwrap_or(0);
        println!(
            "{:>5.0}% | {:>9} {:>9} {:>10} {:>10}..{:<4} | {:>9} {:>9}",
            p * 100.0,
            a.kernel.upgrades,
            a.kernel.daemon_failures,
            a.kernel.threshold_raises,
            tmin,
            tmax,
            r.kernel.upgrades,
            r.kernel.downgrades,
        );
    }
    println!(
        "\nAbove the ideal pressure the daemon cannot find cold pages: \
         AS-COMA raises its\nrelocation threshold and stops remapping, while \
         R-NUMA keeps paying for upgrades\nand downgrades that evict \
         equally-hot pages."
    );
}
