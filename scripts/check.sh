#!/usr/bin/env bash
# Correctness gate for the ascoma workspace: formatting, clippy with
# warnings denied, a panic lint over library code, the protocol model
# checker (clean smoke suite + seeded-mutation detection), the
# bounded-fault / recovery gates, and the feature-gated
# interleaving/churn test suites.
#
# Run from anywhere inside the repo:
#
#   scripts/check.sh            # everything (CI parity)
#   scripts/check.sh --fast     # skip the release-mode model checker run
#
# The panic lint denies `.unwrap()` / `.expect(` in library (non-test)
# code under crates/*/src.  Audited exceptions live in
# scripts/lint_allow.txt as `path:substring` entries.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
    case "$arg" in
    --fast) fast=1 ;;
    *)
        echo "usage: scripts/check.sh [--fast]" >&2
        exit 2
        ;;
    esac
done

step() { printf '\n== %s ==\n' "$1"; }

step "format"
cargo fmt --all -- --check

step "clippy (deny warnings, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

step "clippy (check/permtests/churntests features)"
cargo clippy --workspace --all-targets \
    --features ascoma/check,ascoma/permtests,ascoma-vm/churntests -- -D warnings

step "clippy (conformance harness: ascoma-check/check)"
cargo clippy -p ascoma-check --all-targets --features check -- -D warnings

step "panic lint (unwrap/expect in library code)"
# Per file: scan until the first top-level `#[cfg(test)]` (test modules
# sit at the bottom of each file in this codebase), skip `//` comment
# lines, flag unwrap/expect calls.
#
# The scan set is `find crates/*/src`, so it picks up new modules
# automatically — but the controller stack is load-bearing enough that
# its files are asserted into coverage here: a rename that silently
# dropped them from the scan would otherwise go unnoticed.
for must in crates/obs/src/control.rs crates/bench/src/ablate.rs; do
    if [ ! -f "$must" ]; then
        echo "panic lint: $must missing from the scan set (moved without updating check.sh?)"
        exit 1
    fi
done
hits=$(find crates/*/src -name '*.rs' | sort | while IFS= read -r f; do
    awk -v file="$f" '
        /^#\[cfg\(test\)\]/ { exit }
        { line = $0; sub(/^[ \t]+/, "", line) }
        line ~ /^\/\// { next }
        /\.unwrap\(\)|\.expect\(/ { print file ":" FNR ":" line }
    ' "$f"
done)
viol=0
if [ -n "$hits" ]; then
    while IFS= read -r hit; do
        file=${hit%%:*}
        rest=${hit#*:}
        lineno=${rest%%:*}
        content=${rest#*:}
        allowed=0
        while IFS= read -r allow; do
            case "$allow" in '' | \#*) continue ;; esac
            afile=${allow%%:*}
            apat=${allow#*:}
            if [ "$afile" = "$file" ] && [ "${content#*"$apat"}" != "$content" ]; then
                allowed=1
                break
            fi
        done <scripts/lint_allow.txt
        if [ "$allowed" -eq 0 ]; then
            echo "DENY $file:$lineno: $content"
            viol=1
        fi
    done <<<"$hits"
fi
if [ "$viol" -ne 0 ]; then
    echo "panic lint: unwrap/expect in library code; return a Result or"
    echo "add an audited 'path:substring' entry to scripts/lint_allow.txt"
    exit 1
fi
echo "panic lint clean"

step "wall-clock audit (allow(clippy::disallowed_methods) sites)"
# clippy.toml bans Instant::now and thread::sleep workspace-wide; the
# escape hatch is a fn-level allow, which is only legitimate in the
# audited measurement/pacing files below.  A new allow anywhere else
# must be argued into this list, not silently added.
wall_clock_allowed="
crates/bench/src/harness.rs
crates/bench/src/pacing.rs
crates/bench/src/bin/perf_baseline.rs
crates/bench/benches/obs_overhead.rs
crates/bench/benches/hotpath.rs
crates/core/src/parallel.rs
crates/check/src/bin/model_check.rs
"
audit_viol=0
while IFS= read -r f; do
    ok=0
    for a in $wall_clock_allowed; do
        [ "$f" = "$a" ] && ok=1 && break
    done
    if [ "$ok" -eq 0 ]; then
        echo "DENY $f: allow(clippy::disallowed_methods) outside the audited wall-clock list"
        audit_viol=1
    fi
done < <(grep -rl "allow(clippy::disallowed_methods)" \
    crates --include='*.rs' | sort)
if [ "$audit_viol" -ne 0 ]; then
    echo "wall-clock audit: either route through bench::pacing, or add the"
    echo "file to the audited list in scripts/check.sh with a justification"
    exit 1
fi
echo "wall-clock audit clean"

step "model checker unit + mutation-detection tests"
cargo test -q -p ascoma-check

step "conformance harness tests (ascoma-check --features check)"
cargo test -q -p ascoma-check --features check

step "interleaving permutation tests (core::parallel)"
cargo test -q -p ascoma --features permtests --test parallel_perm

step "frame-pool churn property tests"
cargo test -q -p ascoma-vm --features churntests

step "invariant hooks active (core tests with --features check)"
cargo test -q -p ascoma --features check

step "auto-tuner controller matrix (off-inert, on-deterministic, replay; default + check features)"
cargo test -q -p ascoma --test controller
cargo test -q -p ascoma --features check --test controller

if [ "$fast" -eq 0 ]; then
    step "model checker CI gate (release): smoke suite + seeded mutations"
    cargo run -q --release -p ascoma-check --bin model_check

    step "conformance gate (release): production machines, BFS vs DPOR"
    cargo run -q --release -p ascoma-check --features check \
        --bin model_check -- conform

    step "liveness gate (release): lasso freedom + seeded livelock"
    cargo run -q --release -p ascoma-check --features check \
        --bin model_check -- liveness

    step "fault gate (release): bounded faults k<=2, recovery liveness, seeded recovery bugs"
    cargo run -q --release -p ascoma-check --features check \
        --bin model_check -- faults

    step "fault soak (release): randomized crash/loss/recovery walks"
    cargo run -q --release -p ascoma-check --features check \
        --bin model_check -- soak
else
    step "model checker / conformance / liveness / fault gates skipped (--fast)"
fi

printf '\nall checks passed\n'
