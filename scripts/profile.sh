#!/usr/bin/env bash
# Profile the hot path of the cell engine with Linux perf.
#
# Wraps `perf record` / `perf report` around one serial reduced-grid
# sweep (`perf_baseline --grid reduced --jobs 1`), the same workload the
# CI perf-smoke job gates on.  Output lands in /tmp/ascoma-perf.data so
# repeated runs do not litter the repo.
#
# Usage: scripts/profile.sh [extra perf_baseline args...]
#   PERF=/path/to/perf scripts/profile.sh     # non-PATH perf binary
#
# Degrades gracefully: when perf is not installed (or lacks permission
# to record), prints what to install/adjust and exits 0, so the script
# is safe to call from automation on bare containers.
set -euo pipefail
cd "$(dirname "$0")/.."

PERF="${PERF:-perf}"
DATA=/tmp/ascoma-perf.data

if ! command -v "$PERF" >/dev/null 2>&1; then
    echo "profile.sh: '$PERF' not found; skipping profile." >&2
    echo "Install linux-tools (Debian: apt install linux-perf) or set PERF=/path/to/perf." >&2
    echo "The hotpath microbench needs no perf:  cargo bench -p ascoma-bench --bench hotpath" >&2
    exit 0
fi

cargo build --release -q -p ascoma-bench --bin perf_baseline

if ! "$PERF" record -o "$DATA" --call-graph dwarf -- \
    target/release/perf_baseline --grid reduced --jobs 1 --out /dev/null "$@"; then
    echo "profile.sh: perf record failed (often kernel.perf_event_paranoid; try" >&2
    echo "  sysctl kernel.perf_event_paranoid=1); skipping report." >&2
    exit 0
fi

"$PERF" report -i "$DATA" --stdio --percent-limit 1
echo "profile.sh: raw data in $DATA (e.g. '$PERF annotate -i $DATA')" >&2
