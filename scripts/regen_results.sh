#!/usr/bin/env bash
# Regenerate every committed artifact under results/ from scratch.
# Usage: scripts/regen_results.sh
# Worker threads per binary default to the machine's parallelism;
# override with ASCOMA_JOBS=N (or edit the --jobs flags below).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
start=$SECONDS
run() { echo ">> $*" >&2; cargo run --release -q -p ascoma-bench --bin "$@"; }

run figures                      > results/figures.txt
run figures -- --csv             > results/figures.csv
run figures -- --chart           > results/figures_chart.txt
run table1 -- --app em3d,radix --pressure 0.1,0.5,0.9 > results/table1.txt
run table2                       > results/table2.txt
run table3                       > results/table3.txt
run table4                       > results/table4.txt
run table5                       > results/table5.txt
run table6                       > results/table6.txt
run inspect                      > results/inspect.txt
run ablation_alloc               > results/ablation_alloc.txt
run ablation_backoff             > results/ablation_backoff.txt
run ablation_rac -- --app fft,em3d > results/ablation_rac.txt
run ablation_replication         > results/ablation_replication.txt
run ablation_threshold           > results/ablation_threshold.txt
run ablation_costs               > results/ablation_costs.txt
run ablation_interconnect        > results/ablation_interconnect.txt
run ablation_associativity       > results/ablation_associativity.txt
run scaling                      > results/scaling.txt
run validate_claims              > results/validate_claims.txt
# --progress: one line per completed cell with wall-clock + ETA, so the
# long full-grid baseline is no longer a silent minute of work.
run perf_baseline -- --check --progress --out BENCH_perf.json
run perf_baseline -- --grid reduced --check --progress --out results/BENCH_perf_reduced.json
echo "done; results/ refreshed in $((SECONDS - start))s total wall-clock" >&2
