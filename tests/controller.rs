//! Integration tests for the online auto-tuner (DESIGN.md §19): the
//! closed control loop must be deterministic across job counts, inert
//! when disabled, and replayable from its exported event stream.

use ascoma::experiments::{run_ablation, run_figure_on_jobs};
use ascoma::machine::{simulate, simulate_measured, simulate_traced};
use ascoma::{Arch, SimConfig};
use ascoma_obs::{export, replay_tunes, ControllerParams};
use ascoma_workloads::{App, SizeClass};

/// The paper config at `pressure` with an aggressive short-window
/// controller, so tiny traces still see plenty of decision windows.
fn auto_cfg(pressure: f64) -> SimConfig {
    let mut cfg = SimConfig::at_pressure(pressure);
    cfg.controller = ControllerParams {
        window: 50_000,
        ..ControllerParams::enabled()
    };
    cfg
}

#[test]
fn controller_on_results_are_identical_across_job_counts() {
    let base = auto_cfg(0.9);
    let trace = App::Em3d.build(SizeClass::Tiny, base.geometry.page_bytes());
    let pressures = [0.5, 0.9];
    let serial = run_figure_on_jobs(&trace, &pressures, &base, 1);
    assert!(
        serial.bars.iter().any(|b| b.run.controller.is_some()),
        "controller-on bars must carry a summary"
    );
    for jobs in [3, 4] {
        let parallel = run_figure_on_jobs(&trace, &pressures, &base, jobs);
        assert_eq!(serial.bars.len(), parallel.bars.len());
        for (a, b) in serial.bars.iter().zip(&parallel.bars) {
            // RunResult derives PartialEq over every field, including
            // the controller summary and its knob trajectories.
            assert_eq!(a.run, b.run, "jobs={jobs} drifted from serial");
        }
    }
}

#[test]
fn controller_on_metrics_digest_is_deterministic() {
    let cfg = auto_cfg(0.9);
    let trace = App::Em3d.build(SizeClass::Tiny, cfg.geometry.page_bytes());
    let (r1, _, reg1) = simulate_measured(&trace, Arch::AsComa, &cfg, 50_000);
    let (r2, _, reg2) = simulate_measured(&trace, Arch::AsComa, &cfg, 50_000);
    assert_eq!(r1, r2);
    assert_eq!(reg1.digest(), reg2.digest());
    // Tuner activity reaches the digest's cause counters.
    let s = r1.controller.expect("controller on");
    let json = reg1.digest().to_json();
    assert!(
        json.contains("controller_dwell"),
        "dwell histogram must keep the digest shape stable"
    );
    if s.decisions > 0 {
        assert!(
            json.contains("controller_cause/"),
            "controller causes missing from digest: {json}"
        );
    }
}

#[test]
fn disabled_controller_with_tuned_constants_is_inert() {
    let base = SimConfig::at_pressure(0.7);
    let trace = App::Em3d.build(SizeClass::Tiny, base.geometry.page_bytes());
    let plain = simulate(&trace, Arch::AsComa, &base);
    // Same run with wildly different — but disabled — controller
    // constants: `enabled: false` must gate everything.
    let mut cfg = base;
    cfg.controller = ControllerParams {
        enabled: false,
        window: 10_000,
        hot_enter: 4,
        hot_exit: 2,
        cold_enter: 1,
        confirm: 1,
        ..ControllerParams::default()
    };
    let off = simulate(&trace, Arch::AsComa, &cfg);
    assert_eq!(plain, off, "a disabled controller must change nothing");
    assert!(off.controller.is_none());
}

#[test]
fn ablation_auto_leg_never_loses_its_summary() {
    let base = SimConfig::default();
    let traces = vec![App::Em3d.build(SizeClass::Tiny, base.geometry.page_bytes())];
    let ctl = ControllerParams {
        window: 50_000,
        ..ControllerParams::enabled()
    };
    for jobs in [1, 3, 4] {
        let cells = run_ablation(&traces, &[0.7, 0.9], &base, ctl, jobs);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert!(c.static_run.controller.is_none());
            let s = c.auto_run.controller.as_ref().expect("summary");
            assert_eq!(s.window, 50_000);
        }
    }
}

#[test]
fn replayed_tunes_reproduce_the_live_knob_trajectory() {
    // Force tuner activity: a low hot-enter bound plus single-window
    // confirmation makes even a tiny trace's refetch traffic tune.
    let mut cfg = SimConfig::at_pressure(0.9);
    cfg.controller = ControllerParams {
        window: 20_000,
        hot_enter: 4,
        hot_exit: 2,
        cold_enter: 1,
        confirm: 1,
        ..ControllerParams::enabled()
    };
    let trace = App::Em3d.build(SizeClass::Tiny, cfg.geometry.page_bytes());
    let (run, events) = simulate_traced(&trace, Arch::AsComa, &cfg);
    let summary = run.controller.expect("controller on");
    assert!(
        summary.per_node.iter().any(|n| n.knob_trajectory.len() > 1),
        "the aggressive bounds must actually tune (decisions={})",
        summary.decisions
    );

    // Round-trip: export the trace to JSONL, replay only the
    // `tune_applied` lines, and compare against the live trajectories.
    let jsonl = export::jsonl_string(&events);
    let replayed = replay_tunes(
        &jsonl,
        trace.nodes,
        cfg.policy.threshold_increment,
        cfg.kernel.daemon_period,
    );
    assert_eq!(replayed.len(), summary.per_node.len());
    for (n, node) in summary.per_node.iter().enumerate() {
        assert_eq!(
            replayed[n], node.knob_trajectory,
            "node {n}: replayed trajectory must match the live one"
        );
    }
}
