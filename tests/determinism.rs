//! Reproducibility: identical configuration must give bit-identical
//! results, and workload construction must be stable across builds.

use ascoma::machine::simulate;
use ascoma::{Arch, SimConfig};
use ascoma_workloads::{App, SizeClass};

#[test]
fn identical_runs_are_bit_identical() {
    for app in [App::Em3d, App::Radix] {
        let trace = app.build(SizeClass::Tiny, 4096);
        for arch in Arch::ALL {
            let cfg = SimConfig::at_pressure(0.7);
            let a = simulate(&trace, arch, &cfg);
            let b = simulate(&trace, arch, &cfg);
            assert_eq!(a.cycles, b.cycles, "{} {}", app.name(), arch.name());
            assert_eq!(a.exec, b.exec);
            assert_eq!(a.miss, b.miss);
            assert_eq!(a.kernel, b.kernel);
            assert_eq!(a.final_thresholds, b.final_thresholds);
        }
    }
}

#[test]
fn rebuilt_traces_are_identical() {
    for app in App::ALL {
        let a = app.build(SizeClass::Tiny, 4096);
        let b = app.build(SizeClass::Tiny, 4096);
        assert_eq!(a.total_ops(), b.total_ops(), "{}", app.name());
        assert_eq!(a.first_toucher, b.first_toucher);
        for (pa, pb) in a.programs.iter().zip(&b.programs) {
            assert_eq!(pa.schedule, pb.schedule);
            for (sa, sb) in pa.segments.iter().zip(&pb.segments) {
                assert_eq!(sa.ops, sb.ops);
            }
        }
    }
}

#[test]
fn different_architectures_share_the_same_trace_view() {
    // Running one architecture must not perturb a subsequent run on the
    // same (immutable) trace.
    let trace = App::Lu.build(SizeClass::Tiny, 4096);
    let cfg = SimConfig::at_pressure(0.5);
    let first = simulate(&trace, Arch::AsComa, &cfg);
    let _others: Vec<_> = Arch::ALL
        .iter()
        .map(|a| simulate(&trace, *a, &cfg))
        .collect();
    let again = simulate(&trace, Arch::AsComa, &cfg);
    assert_eq!(first.cycles, again.cycles);
    assert_eq!(first.miss, again.miss);
}
