//! Golden-determinism fixture: a committed digest of one full
//! [`RunResult`] (em3d at 70% pressure, default size, both the AS-COMA
//! and CC-NUMA architectures), recomputed and compared on every test
//! run.
//!
//! Hot-path work (scheduler, dispatch tables, network caching) must be
//! behavior-preserving to the cycle; this fixture catches any drift in
//! seconds, *without* regenerating the whole equivalence grid.  If a
//! change is intentionally behavior-altering (it should not be, for
//! perf PRs), rebless with:
//!
//! ```text
//! ASCOMA_BLESS=1 cargo test --release --test golden_digest -- --nocapture
//! ```
//!
//! and commit the printed digests.

use ascoma::{simulate, Arch, SimConfig};
use ascoma_workloads::{App, SizeClass};

/// FNV-1a 64-bit over the full `Debug` rendering of the result.  The
/// Debug form covers every public field (exec breakdowns, miss classes,
/// latencies, kernel stats, protocol stats, thresholds, trajectories),
/// so any single-cycle drift anywhere in the result changes the digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest(arch: Arch) -> u64 {
    let cfg = SimConfig::at_pressure(0.7);
    let trace = App::Em3d.build(SizeClass::Default, cfg.geometry.page_bytes());
    let r = simulate(&trace, arch, &cfg);
    fnv1a(format!("{r:?}").as_bytes())
}

/// Committed digests of the seed behavior.  Reblessed when the
/// controller field was added to `RunResult` (it prints as
/// `controller: None` for untraced runs); behavior was verified
/// byte-identical to the prior goldens with the field stripped.
const GOLDEN_ASCOMA: u64 = 0xe065_e3af_2739_06ce;
const GOLDEN_CCNUMA: u64 = 0xf878_8a10_78f7_0a4c;

fn check(arch: Arch, golden: u64) {
    let got = digest(arch);
    if std::env::var_os("ASCOMA_BLESS").is_some() {
        println!("golden digest {}: {got:#018x}", arch.name());
        return;
    }
    assert_eq!(
        got,
        golden,
        "em3d@0.7 {} RunResult drifted from the committed golden digest \
         ({got:#018x} != {golden:#018x}); hot-path changes must be \
         behavior-preserving (rebless only for intentional model changes)",
        arch.name()
    );
}

#[test]
fn em3d_ascoma_matches_golden_digest() {
    check(Arch::AsComa, GOLDEN_ASCOMA);
}

#[test]
fn em3d_ccnuma_matches_golden_digest() {
    check(Arch::CcNuma, GOLDEN_CCNUMA);
}
