//! Machine-wide invariant checking: run every (app, arch, pressure) cell
//! with `check_invariants` enabled, which asserts at every barrier and at
//! end of run that
//!
//! 1. every valid S-COMA block is tracked in its home copyset,
//! 2. every dirty owner is a sharer,
//! 3. no node leaks page-cache frames through the fault / relocation /
//!    daemon / eviction paths, and
//! 4. read-only replicas only exist on never-written pages.

use ascoma::machine::simulate;
use ascoma::{Arch, PolicyParams, SimConfig};
use ascoma_workloads::apps::micro;
use ascoma_workloads::{App, SizeClass};

fn checked(pressure: f64) -> SimConfig {
    SimConfig {
        check_invariants: true,
        ..SimConfig::at_pressure(pressure)
    }
}

#[test]
fn invariants_hold_across_the_matrix() {
    for app in App::ALL {
        let trace = app.build(SizeClass::Tiny, 4096);
        for arch in Arch::ALL {
            for p in [0.1, 0.5, 0.9] {
                let r = simulate(&trace, arch, &checked(p));
                assert!(r.cycles > 0, "{} {}", app.name(), arch.name());
            }
        }
    }
}

#[test]
fn invariants_hold_under_heavy_thrash() {
    // Pure S-COMA at 95% pressure churns pages constantly: the harshest
    // test of frame accounting and flush/copyset consistency.
    let trace = App::Radix.build(SizeClass::Tiny, 4096);
    let r = simulate(&trace, Arch::Scoma, &checked(0.95));
    assert!(r.kernel.downgrades > 0, "must actually have churned");
}

#[test]
fn invariants_hold_with_replication() {
    let cfg = SimConfig {
        check_invariants: true,
        policy: PolicyParams {
            replicate_read_only: true,
            ..PolicyParams::default()
        },
        ..SimConfig::at_pressure(0.3)
    };
    let t = micro::read_only_table(4, 8, 4, 4096);
    let r = simulate(&t, Arch::CcNuma, &cfg);
    assert!(r.kernel.replications > 0);
    // And under write-heavy sharing (constant collapses + invalidations).
    let t2 = micro::uniform(4, 4, 2000, 0.5, 2, 5, 4096);
    let _ = simulate(&t2, Arch::CcNuma, &cfg);
}

#[test]
fn invariants_hold_with_locks_and_coherence_traffic() {
    let t = micro::ping_pong(4, 300, 4096);
    for arch in Arch::ALL {
        let _ = simulate(&t, arch, &checked(0.5));
    }
}
