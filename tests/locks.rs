//! Lock synchronization semantics: mutual exclusion, FIFO hand-off,
//! SYNC-bucket accounting, and trace-validation of lock pairing.

use ascoma::machine::simulate;
use ascoma::{Arch, SimConfig};
use ascoma_sim::NodeId;
use ascoma_workloads::trace::{NodeProgram, ScheduleItem, Segment, Trace};

/// `nodes` nodes each: Lock(0), `work` compute, Unlock(0), repeated
/// `rounds` times.
fn contended(nodes: usize, work: u64, rounds: u32) -> Trace {
    let programs = (0..nodes)
        .map(|_| {
            let mut p = NodeProgram::default();
            for _ in 0..rounds {
                p.schedule.push(ScheduleItem::Lock(0));
                p.schedule.push(ScheduleItem::Compute(work));
                p.schedule.push(ScheduleItem::Unlock(0));
            }
            p
        })
        .collect();
    Trace {
        name: "locks".into(),
        nodes,
        shared_pages: nodes as u64,
        first_toucher: (0..nodes).map(|n| NodeId(n as u16)).collect(),
        programs,
    }
}

#[test]
fn critical_sections_serialize() {
    let nodes = 4;
    let work = 10_000u64;
    let rounds = 3;
    let t = contended(nodes, work, rounds);
    t.validate(4096);
    let r = simulate(&t, Arch::CcNuma, &SimConfig::default());
    // All critical sections must serialize: total time is at least the
    // sum of every node's critical work.
    let serial_floor = work * nodes as u64 * rounds as u64;
    assert!(
        r.cycles >= serial_floor,
        "cycles {} below the serialization floor {serial_floor}",
        r.cycles
    );
    // Contention shows up as SYNC time and in the contended counter.
    assert!(r.exec.sync > 0);
    assert!(r.kernel.lock_contended > 0);
    assert_eq!(
        r.kernel.lock_acquires,
        (nodes as u32 * rounds) as u64,
        "every Lock() is one acquire"
    );
}

#[test]
fn uncontended_locks_are_cheap() {
    // Each node uses its own lock: no one ever waits.
    let nodes = 4;
    let programs = (0..nodes)
        .map(|n| {
            let mut p = NodeProgram::default();
            for _ in 0..5 {
                p.schedule.push(ScheduleItem::Lock(n as u32));
                p.schedule.push(ScheduleItem::Compute(100));
                p.schedule.push(ScheduleItem::Unlock(n as u32));
            }
            p
        })
        .collect();
    let t = Trace {
        name: "locks-private".into(),
        nodes,
        shared_pages: nodes as u64,
        first_toucher: (0..nodes).map(|n| NodeId(n as u16)).collect(),
        programs,
    };
    let r = simulate(&t, Arch::CcNuma, &SimConfig::default());
    assert_eq!(r.kernel.lock_contended, 0);
    assert_eq!(r.kernel.lock_acquires, 20);
    // SYNC contains only the fixed acquire/release costs, no waiting:
    // every node's sync equals every other node's.
    let syncs: Vec<u64> = r.exec_per_node.iter().map(|e| e.sync).collect();
    assert!(syncs.windows(2).all(|w| w[0] == w[1]), "{syncs:?}");
}

#[test]
fn lock_wait_lands_in_sync_bucket() {
    let t = contended(2, 50_000, 1);
    let r = simulate(&t, Arch::CcNuma, &SimConfig::default());
    // The second node waited ~the first node's critical section.
    let max_sync = r.exec_per_node.iter().map(|e| e.sync).max().unwrap();
    assert!(
        max_sync >= 45_000,
        "waiter's SYNC {max_sync} should cover the holder's critical section"
    );
}

#[test]
fn locks_compose_with_barriers_and_memory() {
    let nodes = 3;
    let programs = (0..nodes)
        .map(|_| {
            let mut p = NodeProgram::default();
            let mut seg = Segment::new(2);
            seg.push(0, true); // shared write inside the critical section
            let i = p.add_segment(seg);
            for _ in 0..4 {
                p.schedule.push(ScheduleItem::Lock(7));
                p.schedule.push(ScheduleItem::Run(i));
                p.schedule.push(ScheduleItem::Unlock(7));
                p.schedule.push(ScheduleItem::Barrier);
            }
            p
        })
        .collect();
    let t = Trace {
        name: "locks-barriers".into(),
        nodes,
        shared_pages: 1,
        first_toucher: vec![NodeId(0)],
        programs,
    };
    t.validate(4096);
    for arch in Arch::ALL {
        let r = simulate(&t, arch, &SimConfig::default());
        assert!(r.cycles > 0, "{}", arch.name());
        assert_eq!(r.kernel.lock_acquires, 12);
    }
}

#[test]
#[should_panic(expected = "misused")]
fn validation_rejects_leaked_locks() {
    let mut p = NodeProgram::default();
    p.schedule.push(ScheduleItem::Lock(0));
    let t = Trace {
        name: "bad".into(),
        nodes: 1,
        shared_pages: 1,
        first_toucher: vec![NodeId(0)],
        programs: vec![p],
    };
    t.validate(4096);
}

#[test]
#[should_panic(expected = "misused")]
fn validation_rejects_unpaired_unlock() {
    let mut p = NodeProgram::default();
    p.schedule.push(ScheduleItem::Unlock(3));
    let t = Trace {
        name: "bad".into(),
        nodes: 1,
        shared_pages: 1,
        first_toucher: vec![NodeId(0)],
        programs: vec![p],
    };
    t.validate(4096);
}
