//! Property-based tests: randomized workloads through the full machine,
//! asserting the invariants that must hold for *any* program — accounting
//! consistency, policy-capability restrictions, determinism, and the
//! coherence-state/cache-residency correspondence that miss
//! classification relies on.

// Gated: requires the external `proptest` crate, unavailable in the
// offline build environment.  Enable with `--features proptests` after
// restoring the proptest dev-dependency.
#![cfg(feature = "proptests")]

use ascoma::machine::simulate;
use ascoma::{Arch, SimConfig};
use ascoma_sim::NodeId;
use ascoma_workloads::trace::{NodeProgram, ScheduleItem, Segment, Trace};
use proptest::prelude::*;

/// A randomized small workload: `nodes` nodes over `pages` shared pages,
/// each node with one segment of random ops replayed `iters` times with
/// barriers between replays.
fn arb_trace() -> impl Strategy<Value = Trace> {
    (2usize..=4, 2u64..=12, 1u32..=3).prop_flat_map(|(nodes, pages, iters)| {
        let ops = proptest::collection::vec(
            (
                0u64..pages * 4096,
                any::<bool>(),
                proptest::bool::weighted(0.2),
            ),
            1..120,
        );
        proptest::collection::vec(ops, nodes).prop_map(move |per_node| {
            let programs = per_node
                .into_iter()
                .map(|ops| {
                    let mut prog = NodeProgram::default();
                    let mut seg = Segment::new(2);
                    for (addr, write, private) in ops {
                        if private {
                            seg.push_private(addr % 8192, write);
                        } else {
                            seg.push(addr, write);
                        }
                    }
                    let i = prog.add_segment(seg);
                    for _ in 0..iters {
                        prog.schedule.push(ScheduleItem::Run(i));
                        prog.schedule.push(ScheduleItem::Barrier);
                    }
                    prog
                })
                .collect();
            Trace {
                name: "prop".into(),
                nodes,
                shared_pages: pages,
                first_toucher: (0..pages)
                    .map(|p| NodeId((p % nodes as u64) as u16))
                    .collect(),
                programs,
            }
        })
    })
}

fn arb_arch() -> impl Strategy<Value = Arch> {
    prop_oneof![
        Just(Arch::CcNuma),
        Just(Arch::Scoma),
        Just(Arch::RNuma),
        Just(Arch::VcNuma),
        Just(Arch::AsComa),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every random workload completes on every architecture with
    /// self-consistent accounting.
    #[test]
    fn accounting_is_consistent(trace in arb_trace(), arch in arb_arch(),
                                pressure in 0.1f64..=1.0) {
        trace.validate(4096);
        let r = simulate(&trace, arch, &SimConfig::at_pressure(pressure));
        // Buckets sum to each node's executed cycles.
        let sum: u64 = r.exec_per_node.iter().map(|e| e.total()).sum();
        prop_assert_eq!(sum, r.exec.total());
        let max = r.exec_per_node.iter().map(|e| e.total()).max().unwrap();
        prop_assert_eq!(r.cycles, max);
        // Miss classes are disjoint and bounded by shared accesses.
        let shared: u64 = trace.programs.iter().map(|p| {
            p.schedule.iter().filter_map(|s| match s {
                ScheduleItem::Run(i) => Some(
                    p.segments[*i as usize].ops.iter().filter(|o| !o.private()).count() as u64
                ),
                _ => None,
            }).sum::<u64>()
        }).sum();
        prop_assert!(r.miss.total() <= shared);
        prop_assert!(r.relocated_page_node_pairs <= r.remote_page_node_pairs);
    }

    /// Determinism for arbitrary inputs.
    #[test]
    fn runs_are_deterministic(trace in arb_trace(), arch in arb_arch()) {
        let cfg = SimConfig::at_pressure(0.5);
        let a = simulate(&trace, arch, &cfg);
        let b = simulate(&trace, arch, &cfg);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.miss, b.miss);
        prop_assert_eq!(a.exec, b.exec);
    }

    /// Non-relocating architectures never pay relocation costs; CC-NUMA
    /// never uses the page cache and never induces cold misses.  The
    /// S-COMA RAC-bypass invariant holds whenever the page cache has
    /// frames at all (at ~100% pressure S-COMA's documented fallback is
    /// to leave pages in CC-NUMA mode, which may use the RAC).
    #[test]
    fn policy_capabilities_respected(trace in arb_trace(), pressure in 0.1f64..=1.0) {
        let cfg = SimConfig::at_pressure(pressure);
        let cc = simulate(&trace, Arch::CcNuma, &cfg);
        prop_assert_eq!(cc.kernel.upgrades, 0);
        prop_assert_eq!(cc.miss.scoma, 0);
        prop_assert_eq!(cc.miss.cold_induced, 0);
        prop_assert_eq!(cc.exec.k_overhd, 0);
        let sc = simulate(&trace, Arch::Scoma, &cfg);
        prop_assert_eq!(sc.kernel.upgrades, 0);
        if pressure <= 0.5 {
            prop_assert_eq!(sc.miss.rac, 0);
        }
    }

    /// Pure S-COMA at zero page-cache capacity (100% pressure) falls back
    /// gracefully: the run completes and remote data is simply never
    /// cached locally.
    #[test]
    fn scoma_survives_total_pressure(trace in arb_trace()) {
        let r = simulate(&trace, Arch::Scoma, &SimConfig::at_pressure(1.0));
        prop_assert!(r.cycles > 0);
        prop_assert_eq!(r.kernel.upgrades, 0);
    }

    /// The first access of each node to each shared page faults exactly
    /// once: page-fault count equals touched (page, node) pairs.
    #[test]
    fn one_fault_per_touched_page(trace in arb_trace(), arch in arb_arch()) {
        let r = simulate(&trace, arch, &SimConfig::at_pressure(0.5));
        let mut touched = 0u64;
        for (n, prog) in trace.programs.iter().enumerate() {
            let mut seen = vec![false; trace.shared_pages as usize];
            for item in &prog.schedule {
                if let ScheduleItem::Run(i) = item {
                    for op in &prog.segments[*i as usize].ops {
                        if !op.private() {
                            seen[(op.addr() / 4096) as usize] = true;
                        }
                    }
                }
            }
            let _ = n;
            touched += seen.iter().filter(|&&t| t).count() as u64;
        }
        prop_assert_eq!(r.kernel.page_faults, touched);
    }
}
