//! Machine behavior on the microbenchmark kernels: each one isolates a
//! distinct protocol/policy path.

use ascoma::machine::simulate;
use ascoma::{Arch, SimConfig};
use ascoma_workloads::apps::micro;

#[test]
fn ping_pong_forces_three_hop_forwards() {
    let t = micro::ping_pong(4, 200, 4096);
    let r = simulate(&t, Arch::CcNuma, &SimConfig::default());
    // Alternating writers leave the block dirty at the other node: the
    // home must forward, and each write invalidates the previous owner.
    assert!(
        r.proto.fetch_3hop > 50,
        "expected dirty forwards, got {:?}",
        r.proto
    );
    assert!(r.proto.invalidations > 50);
    assert!(r.miss.coherence > 50, "{:?}", r.miss);
}

#[test]
fn streaming_is_rac_dominated_on_ccnuma() {
    let t = micro::streaming(4, 4, 3, 4096);
    let r = simulate(&t, Arch::CcNuma, &SimConfig::default());
    // Sequential 32-byte reads within 128-byte blocks: three of every
    // four remote line misses hit the RAC.
    assert!(
        r.miss.rac > 2 * r.miss.remote(),
        "RAC hits {} vs remote {}",
        r.miss.rac,
        r.miss.remote()
    );
}

#[test]
fn streaming_rac_beats_no_rac() {
    let t = micro::streaming(4, 4, 3, 4096);
    let with = simulate(&t, Arch::CcNuma, &SimConfig::default());
    let without = simulate(
        &t,
        Arch::CcNuma,
        &SimConfig {
            rac_bytes: 0,
            ..SimConfig::default()
        },
    );
    assert!(
        without.cycles as f64 > with.cycles as f64 * 1.3,
        "removing the RAC should hurt streaming: {} vs {}",
        without.cycles,
        with.cycles
    );
}

#[test]
fn hotspot_relocations_track_the_hot_set() {
    // 2 hot pages, 90% of traffic: R-NUMA should relocate a small number
    // of pages (the hot ones), not the whole cold region.
    let t = micro::hotspot(4, 16, 2, 0.9, 4000, 6, 11, 4096);
    let r = simulate(&t, Arch::RNuma, &SimConfig::at_pressure(0.3));
    assert!(r.kernel.upgrades > 0, "hot pages must cross the threshold");
    // Upgraded distinct pages per node <= hot set + small slack.
    assert!(
        r.relocated_page_node_pairs <= 4 * (2 + 3),
        "relocated {} page-node pairs for a 2-page hot set",
        r.relocated_page_node_pairs
    );
}

#[test]
fn uniform_writes_generate_invalidations() {
    let t = micro::uniform(4, 4, 3000, 0.5, 2, 17, 4096);
    let r = simulate(&t, Arch::CcNuma, &SimConfig::default());
    assert!(r.proto.invalidations > 0);
    assert!(r.proto.upgrades > 0, "write hits on shared lines upgrade");
}

#[test]
fn read_only_table_bottlenecks_the_home_node() {
    let t = micro::read_only_table(8, 16, 6, 4096);
    let r = simulate(&t, Arch::CcNuma, &SimConfig::default());
    // Every reader's misses are remote to node 0: no local satisfaction
    // beyond node 0's own traffic.
    assert!(r.miss.remote() > 0);
    assert_eq!(r.miss.scoma, 0);
    // S-COMA localizes the table after the first scan.
    let s = simulate(&t, Arch::Scoma, &SimConfig::at_pressure(0.2));
    assert!(s.miss.scoma > s.miss.remote());
    assert!(s.cycles < r.cycles);
}
