//! Observability guarantees:
//!
//! * recording is deterministic — two identical runs produce
//!   byte-identical event streams;
//! * event streams obey causal ordering — a page is never evicted at a
//!   node before it was mapped there;
//! * the no-op sink is free — an instrumented-but-disabled run matches
//!   an uninstrumented run cycle-for-cycle;
//! * exports are well-formed — Chrome traces validate as JSON and the
//!   em3d/70% acceptance trace contains daemon epochs, back-off events
//!   and CC-NUMA→S-COMA upgrades.

use ascoma::machine::{simulate, simulate_measured, simulate_traced, simulate_with_sink};
use ascoma::parallel::run_indexed;
use ascoma::{Arch, SimConfig};
use ascoma_obs::export::{chrome_trace, jsonl_string, validate_json};
use ascoma_obs::{
    parse_jsonl, summarize, Event, MetricsRegistry, MetricsSink, NoopSink, TimedEvent,
};
use ascoma_workloads::apps::em3d::Em3dParams;
use ascoma_workloads::{App, SizeClass};

fn traced_cfg(pressure: f64) -> SimConfig {
    let mut cfg = SimConfig::at_pressure(pressure);
    cfg.obs_sample_period = 20_000;
    cfg
}

#[test]
fn event_streams_are_deterministic() {
    let trace = App::Em3d.build(SizeClass::Tiny, 4096);
    let cfg = traced_cfg(0.7);
    let (ra, ea) = simulate_traced(&trace, Arch::AsComa, &cfg);
    let (rb, eb) = simulate_traced(&trace, Arch::AsComa, &cfg);
    assert_eq!(ra.cycles, rb.cycles);
    assert_eq!(ea, eb, "event streams must be identical across runs");
    assert_eq!(jsonl_string(&ea), jsonl_string(&eb));
    assert!(!ea.is_empty(), "em3d at 70% pressure must emit events");
}

#[test]
fn eviction_never_precedes_mapping() {
    // Per (node, page): the first map event must come no later than the
    // first eviction, and eviction counts can never outrun map counts as
    // the stream is scanned in order.
    let trace = App::Em3d.build(SizeClass::Tiny, 4096);
    for arch in [Arch::AsComa, Arch::Scoma, Arch::RNuma] {
        let (_r, events) = simulate_traced(&trace, arch, &traced_cfg(0.7));
        let mut mapped = std::collections::HashMap::new();
        for te in &events {
            match te.event {
                Event::PageMapped { node, page, .. } => {
                    *mapped.entry((node.0, page.0)).or_insert(0i64) += 1;
                }
                Event::PageEvicted { node, page, .. } => {
                    let count = mapped.entry((node.0, page.0)).or_insert(0i64);
                    assert!(
                        *count > 0,
                        "{}: page {} evicted at node {} before being mapped",
                        arch.name(),
                        page.0,
                        node.0
                    );
                    *count -= 1;
                }
                _ => {}
            }
        }
    }
}

#[test]
fn per_node_cycles_are_monotone() {
    // Events carry the emitting node's clock; within one node's
    // subsequence the stamps must never go backwards.
    let trace = App::Radix.build(SizeClass::Tiny, 4096);
    let (_r, events) = simulate_traced(&trace, Arch::AsComa, &traced_cfg(0.7));
    let mut last = std::collections::HashMap::new();
    for te in &events {
        let node = te.event.node().0;
        let prev = last.insert(node, te.cycle).unwrap_or(0);
        assert!(te.cycle >= prev, "node {node} clock went backwards");
    }
}

#[test]
fn noop_sink_run_matches_uninstrumented_run() {
    let trace = App::Em3d.build(SizeClass::Tiny, 4096);
    for arch in Arch::ALL {
        let cfg = SimConfig::at_pressure(0.7);
        let plain = simulate(&trace, arch, &cfg);
        let (noop, _sink) = simulate_with_sink(&trace, arch, &cfg, NoopSink);
        assert_eq!(plain.cycles, noop.cycles, "{}", arch.name());
        assert_eq!(plain.exec, noop.exec);
        assert_eq!(plain.miss, noop.miss);
        assert_eq!(plain.kernel, noop.kernel);
        assert_eq!(plain.final_thresholds, noop.final_thresholds);
    }
}

#[test]
fn sampling_does_not_perturb_simulation() {
    // The cycle-driven sampler observes node state between scheduler
    // steps; turning it on must not change any simulated outcome.
    let trace = App::Em3d.build(SizeClass::Tiny, 4096);
    let plain = simulate(&trace, Arch::AsComa, &SimConfig::at_pressure(0.7));
    let (sampled, events) = simulate_traced(&trace, Arch::AsComa, &traced_cfg(0.7));
    assert_eq!(plain.cycles, sampled.cycles);
    assert_eq!(plain.miss, sampled.miss);
    assert!(
        events.iter().any(|e| e.event.is_sample()),
        "sampler enabled but no samples emitted"
    );
}

#[test]
fn acceptance_trace_em3d_70_pct() {
    // The ISSUE acceptance run: em3d on AS-COMA at 70% memory pressure
    // must export a valid Chrome trace containing at least one pageout
    // epoch, one threshold back-off and one CC-NUMA→S-COMA upgrade.
    //
    // The Tiny size class compresses simulated time by orders of
    // magnitude, so the paper's policy constants (threshold 64, +32
    // back-off, full daemon period) never trip within a tiny run; scale
    // them down proportionally, exactly as tests/phase_change.rs does
    // for its compressed-timescale daemon runs.
    let trace = Em3dParams {
        iters: 8,
        ..Em3dParams::tiny()
    }
    .build(4096);
    let mut cfg = traced_cfg(0.7);
    cfg.kernel.daemon_period = 10_000;
    cfg.policy.initial_threshold = 16;
    cfg.policy.threshold_increment = 8;
    let (result, events) = simulate_traced(&trace, Arch::AsComa, &cfg);

    let has = |f: fn(&TimedEvent) -> bool| events.iter().any(f);
    assert!(
        has(|e| matches!(e.event, Event::DaemonEpoch { .. })),
        "expected at least one pageout epoch"
    );
    assert!(
        has(|e| matches!(e.event, Event::ThresholdBackoff { .. })),
        "expected at least one threshold back-off event"
    );
    assert!(
        has(|e| matches!(e.event, Event::PageUpgraded { .. })),
        "expected at least one CC-NUMA→S-COMA upgrade"
    );

    let doc = chrome_trace(&events, trace.nodes);
    validate_json(&doc).expect("chrome trace must be valid JSON");
    assert!(doc.contains("\"ph\":\"i\"") && doc.contains("\"ph\":\"C\""));

    let s = summarize(&events, trace.nodes);
    assert!(s.upgrades > 0);
    assert!(s.relocated_pairs() > 0);
    assert!(result.cycles > 0);
}

#[test]
fn jsonl_export_round_trips_through_import() {
    // An archived JSONL trace re-imported through the dependency-free
    // JSON reader must reproduce the in-memory stream exactly — and
    // therefore the same lifecycle summary and metrics digest.
    let trace = App::Em3d.build(SizeClass::Tiny, 4096);
    let (_r, events) = simulate_traced(&trace, Arch::AsComa, &traced_cfg(0.7));
    let text = jsonl_string(&events);
    let imported = parse_jsonl(&text).expect("exported JSONL must re-import");
    assert_eq!(events, imported, "round trip must be lossless");
    assert_eq!(
        summarize(&events, trace.nodes),
        summarize(&imported, trace.nodes)
    );
    let window = 50_000;
    assert_eq!(
        MetricsRegistry::from_events(&events, trace.nodes, window).digest(),
        MetricsRegistry::from_events(&imported, trace.nodes, window).digest()
    );
}

#[test]
fn online_metrics_sink_matches_offline_registry() {
    // Folding events as they are emitted (constant memory) must produce
    // the same registry as recording the stream and folding afterwards.
    let trace = App::Em3d.build(SizeClass::Tiny, 4096);
    let cfg = traced_cfg(0.7);
    let window = 50_000;
    let (result, events, offline) = simulate_measured(&trace, Arch::AsComa, &cfg, window);
    let (_r, sink) = simulate_with_sink(
        &trace,
        Arch::AsComa,
        &cfg,
        MetricsSink::new(trace.nodes, window),
    );
    assert_eq!(sink.registry, offline);
    assert_eq!(result.metrics, Some(offline.digest()));
    assert!(
        !events.is_empty() && offline.digest().hist("miss_service/home").is_some(),
        "measured run must populate the digest"
    );
}

#[test]
fn metrics_digest_is_identical_across_job_counts() {
    // The digest is a pure function of the deterministic event stream,
    // so sweeping cells through 1 worker or 4 must yield the same bytes.
    let trace = App::Em3d.build(SizeClass::Tiny, 4096);
    let cells = [
        (Arch::AsComa, 0.5),
        (Arch::AsComa, 0.9),
        (Arch::Scoma, 0.7),
        (Arch::RNuma, 0.7),
    ];
    let run = |jobs: usize| {
        run_indexed(cells.len(), jobs, |i| {
            let (arch, p) = cells[i];
            let (result, _events, _reg) = simulate_measured(&trace, arch, &traced_cfg(p), 50_000);
            (result.metrics, result.cycles)
        })
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel);
    assert!(serial.iter().all(|(m, _)| m.is_some()));
}

#[test]
fn threshold_trajectories_extend_final_thresholds() {
    // The trajectory's last point must agree with the legacy
    // final_thresholds field it supersedes.
    let trace = App::Em3d.build(SizeClass::Tiny, 4096);
    let r = simulate(&trace, Arch::AsComa, &SimConfig::at_pressure(0.9));
    assert_eq!(r.threshold_trajectories.len(), r.final_thresholds.len());
    for (node, (traj, fin)) in r
        .threshold_trajectories
        .iter()
        .zip(&r.final_thresholds)
        .enumerate()
    {
        if let Some(last) = traj.last() {
            assert_eq!(last.threshold, *fin, "node {node}");
        }
        assert!(
            traj.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "node {node} trajectory not time-ordered"
        );
    }
}
