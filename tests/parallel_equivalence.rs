//! The parallel engine's determinism contract: fanning cells across
//! worker threads must produce `RunResult`s field-for-field identical to
//! the serial path — including threshold trajectories and observability
//! digests — for every `(app, arch, pressure)` cell.

use ascoma::experiments::{run_figure_on, run_figure_on_jobs};
use ascoma::machine::simulate_traced;
use ascoma::parallel::run_indexed;
use ascoma::sweep::Sweep;
use ascoma::{Arch, SimConfig};
use ascoma_workloads::{App, SizeClass};

const APPS: [App; 2] = [App::Em3d, App::Radix];
const ARCHS: [Arch; 2] = [Arch::AsComa, Arch::RNuma];
const PRESSURES: [f64; 2] = [0.1, 0.9];

#[test]
fn parallel_cells_identical_to_serial() {
    let base = SimConfig::default();
    for app in APPS {
        let trace = app.build(SizeClass::Tiny, base.geometry.page_bytes());
        let cells: Vec<(Arch, f64)> = ARCHS
            .iter()
            .flat_map(|&a| PRESSURES.iter().map(move |&p| (a, p)))
            .collect();
        let serial: Vec<_> = cells
            .iter()
            .map(|&(a, p)| {
                let cfg = SimConfig {
                    pressure: p,
                    ..base
                };
                ascoma::simulate(&trace, a, &cfg)
            })
            .collect();
        let parallel = run_indexed(cells.len(), 4, |i| {
            let (a, p) = cells[i];
            let cfg = SimConfig {
                pressure: p,
                ..base
            };
            ascoma::simulate(&trace, a, &cfg)
        });
        for ((s, p), &(arch, pressure)) in serial.iter().zip(&parallel).zip(&cells) {
            // Field-for-field; `RunResult: PartialEq` covers every field
            // including `threshold_trajectories` and the obs digest.
            assert_eq!(s, p, "{app:?} {arch:?} @ {pressure}");
            assert!(!s.threshold_trajectories.is_empty());
        }
    }
}

#[test]
fn traced_runs_agree_across_workers() {
    // The obs digest and event stream must also be reproduction-stable
    // when produced on worker threads.
    let mut cfg = SimConfig::at_pressure(0.7);
    cfg.obs_sample_period = 50_000;
    for app in APPS {
        let trace = app.build(SizeClass::Tiny, cfg.geometry.page_bytes());
        let (serial, serial_events) = simulate_traced(&trace, Arch::AsComa, &cfg);
        let traced = run_indexed(2, 2, |_| simulate_traced(&trace, Arch::AsComa, &cfg));
        for (r, events) in &traced {
            assert_eq!(&serial, r, "{app:?} traced run diverged");
            assert_eq!(&serial_events, events, "{app:?} event stream diverged");
            assert!(r.obs.is_some() && r.obs == serial.obs);
        }
    }
}

#[test]
fn figure_engine_identical_across_job_counts() {
    let base = SimConfig::default();
    for app in APPS {
        let trace = app.build(SizeClass::Tiny, base.geometry.page_bytes());
        let serial = run_figure_on(&trace, &PRESSURES, &base);
        for jobs in [2, 4, 9] {
            let par = run_figure_on_jobs(&trace, &PRESSURES, &base, jobs);
            assert_eq!(serial.app, par.app);
            assert_eq!(serial.baseline, par.baseline);
            assert_eq!(serial.bars.len(), par.bars.len());
            for (a, b) in serial.bars.iter().zip(&par.bars) {
                assert_eq!(a.run, b.run, "jobs={jobs}");
                assert_eq!(a.relative_time, b.relative_time, "jobs={jobs}");
            }
        }
    }
}

#[test]
fn sweep_jobs_produce_identical_grid() {
    let base = SimConfig::default();
    let trace = App::Ocean.build(SizeClass::Tiny, base.geometry.page_bytes());
    let serial = Sweep::new(&trace)
        .archs(ARCHS)
        .pressures(PRESSURES)
        .run(&base);
    let parallel = Sweep::new(&trace)
        .archs(ARCHS)
        .pressures(PRESSURES)
        .jobs(4)
        .run(&base);
    assert_eq!(serial.cells, parallel.cells);
    assert_eq!(serial.archs, parallel.archs);
    assert_eq!(serial.pressures, parallel.pressures);
}
