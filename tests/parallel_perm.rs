//! Interleaving-permutation tests for `ascoma::parallel` (feature
//! `permtests`): a std-only, loom-lite check that reassembly is
//! independent of worker completion order.
//!
//! Two layers:
//!
//! * [`assemble`] is driven with *every* permutation of arrival order and
//!   must produce identical output — the reassembly half in isolation.
//! * [`run_indexed`] is run with a condvar turnstile inside the work
//!   function that *forces* each completion order across real threads —
//!   the full pool under every schedule a scheduler could choose.

#![cfg(feature = "permtests")]

use ascoma::parallel::{assemble, run_indexed};
use std::sync::{Condvar, Mutex};

/// All permutations of `0..n` (Heap's algorithm, deterministic order).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k % 2 == 0 {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

#[test]
fn assemble_is_arrival_order_independent() {
    for n in 0..=6 {
        let expected: Vec<u64> = (0..n as u64).map(|i| i * i + 7).collect();
        for perm in permutations(n) {
            let arrivals: Vec<(usize, u64)> = perm
                .iter()
                .map(|&i| (i, (i as u64) * (i as u64) + 7))
                .collect();
            assert_eq!(
                assemble(n, arrivals),
                expected,
                "order {perm:?} changed the output"
            );
        }
    }
}

#[test]
fn assemble_rejects_duplicates_and_gaps() {
    let dup = std::panic::catch_unwind(|| assemble(2, vec![(0, 1u8), (0, 2u8)]));
    assert!(dup.is_err(), "duplicate index must panic");
    let gap = std::panic::catch_unwind(|| assemble(3, vec![(0, 1u8), (2, 2u8)]));
    assert!(gap.is_err(), "missing index must panic");
    let oob = std::panic::catch_unwind(|| assemble(1, vec![(1, 1u8)]));
    assert!(oob.is_err(), "out-of-range index must panic");
}

/// A condvar turnstile: thread for item `i` may only proceed when its
/// assigned rank comes up, forcing an exact completion order.
struct Turnstile {
    turn: Mutex<usize>,
    cv: Condvar,
}

impl Turnstile {
    fn new() -> Self {
        Self {
            turn: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn pass(&self, rank: usize) {
        let mut turn = self.turn.lock().unwrap_or_else(|e| e.into_inner());
        while *turn != rank {
            turn = self.cv.wait(turn).unwrap_or_else(|e| e.into_inner());
        }
        *turn += 1;
        self.cv.notify_all();
    }
}

#[test]
fn run_indexed_is_schedule_independent() {
    // With jobs == n every item owns a worker, so any completion order is
    // reachable without deadlock; the turnstile then forces each one.
    const N: usize = 4;
    let serial: Vec<u64> = run_indexed(N, 1, |i| (i as u64 + 1) * 3);
    for perm in permutations(N) {
        let mut rank = [0usize; N];
        for (r, &i) in perm.iter().enumerate() {
            rank[i] = r;
        }
        let gate = Turnstile::new();
        let forced: Vec<u64> = run_indexed(N, N, |i| {
            gate.pass(rank[i]);
            (i as u64 + 1) * 3
        });
        assert_eq!(forced, serial, "schedule {perm:?} changed the output");
    }
}

#[test]
fn run_indexed_is_schedule_independent_with_contention() {
    // Same forcing, but results big enough to stress channel reassembly
    // and a work function with real allocation.
    const N: usize = 5;
    let work = |i: usize| -> Vec<u8> { vec![i as u8; 64 + i] };
    let serial: Vec<Vec<u8>> = run_indexed(N, 1, work);
    for perm in permutations(N) {
        let mut rank = [0usize; N];
        for (r, &i) in perm.iter().enumerate() {
            rank[i] = r;
        }
        let gate = Turnstile::new();
        let forced = run_indexed(N, N, |i| {
            gate.pass(rank[i]);
            work(i)
        });
        assert_eq!(forced, serial, "schedule {perm:?} changed the output");
    }
}
