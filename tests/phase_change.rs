//! AS-COMA's recovery path: "Should the number of hot pages drop, e.g.,
//! because of a phase change in the program that causes a number of hot
//! pages to grow cold, the pageout daemon will detect it by detecting an
//! increase in the number of cold pages.  At this point, it can reduce
//! the refetch threshold."
//!
//! The workload has two phases over disjoint remote regions: phase 1's
//! hot set saturates the page cache and triggers back-off; in phase 2 the
//! old set goes cold, the daemon reclaims it, and thresholds recover.

use ascoma::machine::simulate;
use ascoma::{Arch, SimConfig};
use ascoma_sim::rng::SimRng;
use ascoma_sim::NodeId;
use ascoma_workloads::trace::{NodeProgram, ScheduleItem, Segment, Trace};

/// `readers` nodes scatter-read region A for `iters` iterations, then
/// region B.  Both regions are homed on node 0 (with ballast for the
/// cap); each region is `pages` pages.
fn two_phase(readers: usize, pages: u64, iters: u32, seed: u64) -> Trace {
    let nodes = readers + 1;
    let region_bytes = pages * 4096;
    let root = SimRng::seed_from(seed);
    let mut programs = Vec::new();
    for n in 0..nodes {
        let mut p = NodeProgram::default();
        if n == 0 {
            // Home node: idle compute so barriers line up.
            for _ in 0..2 * iters {
                p.schedule.push(ScheduleItem::Compute(1000));
                p.schedule.push(ScheduleItem::Barrier);
            }
        } else {
            let mut rng = root.derive(n as u64);
            let mut mk = |base: u64| {
                let mut seg = Segment::new(2);
                // Scattered block-grained reads with revisits: enough
                // refetches per page to cross the relocation threshold.
                for _ in 0..pages * 128 {
                    let block = rng.below(region_bytes / 128);
                    seg.push(base + block * 128, false);
                }
                seg
            };
            let a = p.add_segment(mk(0));
            let b = p.add_segment(mk(region_bytes));
            for _ in 0..iters {
                p.schedule.push(ScheduleItem::Run(a));
                p.schedule.push(ScheduleItem::Barrier);
            }
            for _ in 0..iters {
                p.schedule.push(ScheduleItem::Run(b));
                p.schedule.push(ScheduleItem::Barrier);
            }
        }
        programs.push(p);
    }
    // Regions A and B homed at node 0; ballast spreads the cap.
    let mut first_toucher = vec![NodeId(0); 2 * pages as usize];
    for n in 0..nodes {
        first_toucher.extend(vec![NodeId(n as u16); 2 * pages as usize]);
    }
    Trace {
        name: "two-phase".into(),
        nodes,
        shared_pages: first_toucher.len() as u64,
        first_toucher,
        programs,
    }
}

#[test]
fn phase_change_triggers_backoff_then_recovery() {
    let t = two_phase(3, 24, 10, 0x9A5E);
    t.validate(4096);
    // Pressure such that one region's worth of remote pages fits per
    // reader but not both phases' combined churn comfortably; a short
    // daemon period so the test's compressed timescale still gives the
    // daemon several windows per phase.
    let mut cfg = SimConfig {
        check_invariants: true,
        ..SimConfig::at_pressure(0.75)
    };
    cfg.kernel.daemon_period = 50_000;
    let r = simulate(&t, Arch::AsComa, &cfg);
    assert!(
        r.kernel.daemon_failures > 0,
        "phase 1 must saturate the page cache and fail the daemon: {:?}",
        r.kernel
    );
    assert!(
        r.kernel.threshold_raises > 0,
        "back-off must engage: {:?}",
        r.kernel
    );
    assert!(
        r.kernel.threshold_drops > 0,
        "phase 2 must let the daemon reclaim phase-1 pages and recover \
         the threshold: {:?}",
        r.kernel
    );
    assert!(
        r.kernel.pages_reclaimed > 0,
        "cold phase-1 pages must actually be reclaimed"
    );
}

#[test]
fn single_phase_never_recovers() {
    // Control: with one phase there is no cold set to find, so drops
    // should stay at zero while raises accumulate.
    let t = {
        let mut t = two_phase(3, 24, 10, 0x9A5E);
        // Re-run phase A in place of phase B.
        for p in &mut t.programs[1..] {
            for item in p.schedule.iter_mut() {
                if let ScheduleItem::Run(1) = item {
                    *item = ScheduleItem::Run(0);
                }
            }
        }
        t
    };
    let mut cfg = SimConfig::at_pressure(0.75);
    cfg.kernel.daemon_period = 50_000;
    let r = simulate(&t, Arch::AsComa, &cfg);
    assert!(
        r.kernel.threshold_drops <= r.kernel.threshold_raises,
        "{:?}",
        r.kernel
    );
}
