//! Cross-product smoke matrix: every (application, architecture,
//! pressure) cell completes, produces self-consistent statistics, and
//! respects architecture-level invariants.

use ascoma::machine::simulate;
use ascoma::{Arch, RunResult, SimConfig};
use ascoma_workloads::{App, SizeClass};

fn consistent(r: &RunResult, nodes: usize) {
    assert!(r.cycles > 0);
    assert_eq!(r.exec_per_node.len(), nodes);
    // The machine-wide breakdown is the sum of the per-node ones.
    let sum: u64 = r.exec_per_node.iter().map(|e| e.total()).sum();
    assert_eq!(sum, r.exec.total());
    // Execution time is the slowest node's bucket total.
    let max = r.exec_per_node.iter().map(|e| e.total()).max().unwrap();
    assert_eq!(r.cycles, max);
    assert!(r.relocated_page_node_pairs <= r.remote_page_node_pairs);
    // Paper invariant: only relocating architectures upgrade pages.
    if !r.arch.relocates() {
        assert_eq!(r.kernel.relocation_interrupts, 0, "{:?}", r.arch);
    }
    if r.arch == Arch::CcNuma {
        assert_eq!(r.kernel.upgrades + r.kernel.downgrades, 0);
        assert_eq!(r.miss.scoma, 0);
        assert_eq!(r.miss.cold_induced, 0, "CC-NUMA never flushes pages");
    }
}

#[test]
fn every_cell_completes_consistently() {
    for app in App::ALL {
        let trace = app.build(SizeClass::Tiny, 4096);
        for arch in Arch::ALL {
            for p in [0.1, 0.5, 0.9] {
                let r = simulate(&trace, arch, &SimConfig::at_pressure(p));
                consistent(&r, trace.nodes);
            }
        }
    }
}

#[test]
fn ccnuma_is_pressure_independent() {
    for app in App::ALL {
        let trace = app.build(SizeClass::Tiny, 4096);
        let a = simulate(&trace, Arch::CcNuma, &SimConfig::at_pressure(0.1));
        let b = simulate(&trace, Arch::CcNuma, &SimConfig::at_pressure(0.9));
        assert_eq!(
            a.cycles,
            b.cycles,
            "{}: CC-NUMA must not depend on memory pressure",
            app.name()
        );
        assert_eq!(a.miss, b.miss);
    }
}

#[test]
fn miss_totals_never_exceed_shared_accesses() {
    for app in App::ALL {
        let trace = app.build(SizeClass::Tiny, 4096);
        let shared_ops: u64 = trace
            .programs
            .iter()
            .map(|p| {
                p.schedule
                    .iter()
                    .filter_map(|s| match s {
                        ascoma_workloads::trace::ScheduleItem::Run(i) => Some(
                            p.segments[*i as usize]
                                .ops
                                .iter()
                                .filter(|o| !o.private())
                                .count() as u64,
                        ),
                        _ => None,
                    })
                    .sum::<u64>()
            })
            .sum();
        for arch in Arch::ALL {
            let r = simulate(&trace, arch, &SimConfig::at_pressure(0.5));
            assert!(
                r.miss.total() <= shared_ops,
                "{} {}: misses {} exceed shared accesses {}",
                app.name(),
                arch.name(),
                r.miss.total(),
                shared_ops
            );
        }
    }
}

#[test]
fn scoma_never_uses_rac_and_numa_never_uses_page_cache() {
    let trace = App::Em3d.build(SizeClass::Tiny, 4096);
    let s = simulate(&trace, Arch::Scoma, &SimConfig::at_pressure(0.3));
    assert_eq!(s.miss.rac, 0, "pure S-COMA pages bypass the RAC");
    let c = simulate(&trace, Arch::CcNuma, &SimConfig::at_pressure(0.3));
    assert_eq!(c.miss.scoma, 0);
    assert!(c.miss.rac > 0);
}

#[test]
fn thresholds_only_move_for_adaptive_architectures() {
    let trace = App::Radix.build(SizeClass::Tiny, 4096);
    for (arch, adaptive) in [
        (Arch::RNuma, false),
        (Arch::VcNuma, true),
        (Arch::AsComa, true),
    ] {
        let r = simulate(&trace, arch, &SimConfig::at_pressure(0.9));
        let moved = r.final_thresholds.iter().any(|&t| t != 64);
        if !adaptive {
            assert!(!moved, "{}: fixed threshold moved", arch.name());
        }
    }
}

#[test]
fn larger_machines_work() {
    use ascoma_workloads::apps::ocean::OceanParams;
    let trace = OceanParams {
        nodes: 16,
        ..OceanParams::tiny()
    }
    .build(4096);
    let r = simulate(&trace, Arch::AsComa, &SimConfig::at_pressure(0.5));
    consistent(&r, 16);
}
