//! Read-only page replication (the paper's §2.2 CC-NUMA improvement):
//! never-written remote pages are backed by local frames; the first write
//! collapses every replica.

use ascoma::machine::simulate;
use ascoma::{Arch, PolicyParams, SimConfig};
use ascoma_sim::NodeId;
use ascoma_workloads::trace::{NodeProgram, ScheduleItem, Segment, Trace};

fn cfg(replicate: bool) -> SimConfig {
    SimConfig {
        policy: PolicyParams {
            replicate_read_only: replicate,
            ..PolicyParams::default()
        },
        ..SimConfig::at_pressure(0.3)
    }
}

/// Node 0 owns a lookup table written only during setup; all other nodes
/// scan it repeatedly.  `late_write` optionally makes node 0 write the
/// table again mid-run, collapsing the replicas.
fn table_trace(nodes: usize, table_pages: u64, scans: u32, late_write: bool) -> Trace {
    let table_bytes = table_pages * 4096;
    let mut programs = Vec::new();
    for n in 0..nodes {
        let mut p = NodeProgram::default();
        if n == 0 {
            // The table's contents pre-exist (first-touch homes it here);
            // the owner does unrelated local work while readers scan.
            let mut local = Segment::new(2);
            local.push_private(0, true);
            let i = p.add_segment(local);
            p.schedule.push(ScheduleItem::Run(i));
            p.schedule.push(ScheduleItem::Barrier);
            if late_write {
                // Touch one line of each table page mid-run.
                let mut w = Segment::new(2);
                for pg in 0..table_pages {
                    w.push(pg * 4096, true);
                }
                let wi = p.add_segment(w);
                p.schedule.push(ScheduleItem::Compute(100_000));
                p.schedule.push(ScheduleItem::Run(wi));
            }
            p.schedule.push(ScheduleItem::Barrier);
        } else {
            // Scattered lookups: one line per DSM block, so the RAC's
            // sequential-streak advantage does not apply and locality
            // must come from page-grained replication.
            let mut scan = Segment::new(2);
            let mut a = 0;
            while a < table_bytes {
                scan.push(a, false);
                a += 128;
            }
            let i = p.add_segment(scan);
            p.schedule.push(ScheduleItem::Barrier);
            for _ in 0..scans {
                p.schedule.push(ScheduleItem::Run(i));
            }
            p.schedule.push(ScheduleItem::Barrier);
        }
        programs.push(p);
    }
    // Home everything on node 0 (the writer), with ballast pages for the
    // first-touch cap.
    let mut first_toucher = vec![NodeId(0); table_pages as usize];
    for n in 0..nodes {
        for _ in 0..table_pages {
            first_toucher.push(NodeId(n as u16));
        }
    }
    Trace {
        name: "lookup-table".into(),
        nodes,
        shared_pages: first_toucher.len() as u64,
        first_toucher,
        programs,
    }
}

#[test]
fn replication_localizes_read_only_scans() {
    let t = table_trace(4, 8, 6, false);
    t.validate(4096);
    let off = simulate(&t, Arch::CcNuma, &cfg(false));
    let on = simulate(&t, Arch::CcNuma, &cfg(true));
    assert!(on.kernel.replications > 0, "replicas must be created");
    assert!(
        on.miss.scoma > 0,
        "replica hits must be served from local frames"
    );
    assert!(
        on.cycles < off.cycles,
        "replication must speed up read-only scans: {} !< {}",
        on.cycles,
        off.cycles
    );
    assert!(
        on.miss.remote() < off.miss.remote() / 2,
        "remote misses must drop substantially: {} vs {}",
        on.miss.remote(),
        off.miss.remote()
    );
}

#[test]
fn first_write_collapses_replicas() {
    let t = table_trace(4, 8, 4, true);
    let on = simulate(&t, Arch::CcNuma, &cfg(true));
    assert!(on.kernel.replications > 0, "replicas form before the write");
    assert!(
        on.kernel.replica_collapses > 0,
        "the mid-run write must collapse replicas: {:?}",
        on.kernel
    );
}

#[test]
fn collapse_returns_frames_and_behavior_reverts_to_numa() {
    let t = table_trace(4, 8, 6, true);
    let on = simulate(&t, Arch::CcNuma, &cfg(true));
    let off = simulate(&t, Arch::CcNuma, &cfg(false));
    // After the collapse the scans go remote again; totals must be closer
    // to plain CC-NUMA than in the read-only case.
    assert!(on.miss.remote() > 0);
    assert!(
        on.cycles <= off.cycles * 11 / 10,
        "collapse must not blow up"
    );
}

#[test]
fn replication_is_inert_when_disabled() {
    let t = table_trace(4, 8, 4, false);
    let r = simulate(&t, Arch::CcNuma, &cfg(false));
    assert_eq!(r.kernel.replications, 0);
    assert_eq!(r.kernel.replica_collapses, 0);
    assert_eq!(r.miss.scoma, 0);
}

#[test]
fn replication_only_applies_to_ccnuma() {
    // The hybrids already have the page cache; the flag must not perturb
    // AS-COMA (its S-COMA mappings are coherent, not read-only replicas).
    let t = table_trace(4, 8, 4, false);
    let a = simulate(&t, Arch::AsComa, &cfg(true));
    let b = simulate(&t, Arch::AsComa, &cfg(false));
    assert_eq!(a.kernel.replications, 0);
    assert_eq!(a.cycles, b.cycles);
}
