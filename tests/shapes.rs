//! Shape validation: the paper's headline claims, asserted against the
//! simulator (DESIGN.md §10).  These are the load-bearing results of
//! Figures 2–3 — who wins, by roughly what factor, and where the
//! crossovers fall — not absolute cycle counts.

use ascoma::machine::simulate;
use ascoma::{Arch, SimConfig};
use ascoma_workloads::{App, SizeClass};

fn run(app: App, arch: Arch, pressure: f64) -> ascoma::RunResult {
    let cfg = SimConfig::at_pressure(pressure);
    let trace = app.build(SizeClass::Default, cfg.geometry.page_bytes());
    simulate(&trace, arch, &cfg)
}

fn rel(app: App, arch: Arch, pressure: f64) -> f64 {
    let base = run(app, Arch::CcNuma, pressure);
    run(app, arch, pressure).relative_to(&base)
}

/// Claim 1: at low pressure, S-COMA and AS-COMA are the best
/// architectures on the thrash-sensitive applications, beating CC-NUMA
/// clearly.
#[test]
fn scoma_and_ascoma_win_at_low_pressure() {
    for app in [App::Barnes, App::Radix] {
        let s = rel(app, Arch::Scoma, 0.1);
        let a = rel(app, Arch::AsComa, 0.1);
        assert!(s < 0.85, "{}: S-COMA {s} not clearly ahead", app.name());
        assert!(a < 0.85, "{}: AS-COMA {a} not clearly ahead", app.name());
        // AS-COMA matches pure S-COMA at low pressure.
        assert!(
            (a / s - 1.0).abs() < 0.05,
            "{}: AS-COMA {a} != S-COMA {s} at 10%",
            app.name()
        );
    }
}

/// Claim 2: pure S-COMA craters at high memory pressure on the
/// thrash-sensitive applications, with kernel overhead dominating.
#[test]
fn scoma_thrashes_at_high_pressure() {
    for app in [App::Em3d, App::Radix, App::Barnes] {
        let r = run(app, Arch::Scoma, 0.9);
        let base = run(app, Arch::CcNuma, 0.9);
        let relative = r.relative_to(&base);
        assert!(
            relative > 1.5,
            "{}: S-COMA at 90% only {relative}x CC-NUMA",
            app.name()
        );
        assert!(
            r.exec.k_overhd > base.exec.k_overhd * 10,
            "{}: S-COMA thrash must be kernel-overhead-driven",
            app.name()
        );
    }
}

/// Claim 3: R-NUMA falls below CC-NUMA at high pressure on the
/// thrash-sensitive applications — *even though* its remote
/// conflict/capacity misses are no worse — because of kernel overhead
/// and induced cold misses (the paper's key observation).
#[test]
fn rnuma_below_ccnuma_at_high_pressure() {
    for app in [App::Radix, App::Barnes] {
        let r = run(app, Arch::RNuma, 0.9);
        let base = run(app, Arch::CcNuma, 0.9);
        assert!(
            r.relative_to(&base) > 1.02,
            "{}: R-NUMA at 90% should lose to CC-NUMA, got {}",
            app.name(),
            r.relative_to(&base)
        );
        assert!(
            r.exec.k_overhd > base.exec.k_overhd,
            "{}: R-NUMA's loss must come with kernel overhead",
            app.name()
        );
        assert!(
            r.miss.cold_induced > 0,
            "{}: R-NUMA churn must induce cold misses",
            app.name()
        );
    }
}

/// Claim 4: AS-COMA stays within a few percent of CC-NUMA even at 90%
/// pressure on every application, and beats the other hybrids there.
#[test]
fn ascoma_converges_to_ccnuma_at_high_pressure() {
    for app in App::ALL {
        let a = rel(app, Arch::AsComa, 0.9);
        assert!(
            a < 1.06,
            "{}: AS-COMA at 90% is {a}x CC-NUMA (paper bound: ~1.05)",
            app.name()
        );
    }
    for app in [App::Radix, App::Barnes] {
        let a = rel(app, Arch::AsComa, 0.9);
        let r = rel(app, Arch::RNuma, 0.9);
        assert!(
            r > a + 0.03,
            "{}: AS-COMA ({a}) must clearly beat R-NUMA ({r}) at 90%",
            app.name()
        );
    }
}

/// Claim 5: VC-NUMA's hardware back-off lands between R-NUMA and AS-COMA
/// at high pressure.
#[test]
fn vcnuma_sits_between_rnuma_and_ascoma() {
    for app in [App::Radix, App::Barnes] {
        let a = rel(app, Arch::AsComa, 0.9);
        let v = rel(app, Arch::VcNuma, 0.9);
        let r = rel(app, Arch::RNuma, 0.9);
        assert!(
            v <= r + 0.01,
            "{}: VC-NUMA ({v}) should not lose to R-NUMA ({r})",
            app.name()
        );
        assert!(
            v >= a - 0.01,
            "{}: VC-NUMA ({v}) should not beat AS-COMA ({a})",
            app.name()
        );
    }
}

/// Claim 6: fft and ocean are insensitive — every architecture within a
/// few percent of CC-NUMA at every pressure except pure S-COMA at high
/// pressure.
#[test]
fn fft_and_ocean_are_insensitive() {
    for app in [App::Fft, App::Ocean] {
        for arch in [Arch::AsComa, Arch::VcNuma, Arch::RNuma] {
            for p in [0.1, 0.9] {
                let x = rel(app, arch, p);
                assert!(
                    (0.9..1.1).contains(&x),
                    "{} {} at {p}: {x} outside the insensitive band",
                    app.name(),
                    arch.name()
                );
            }
        }
        // S-COMA's high-pressure penalty still shows.
        let s = rel(app, Arch::Scoma, 0.9);
        assert!(
            s > 1.08,
            "{}: S-COMA at 90% should degrade, got {s}",
            app.name()
        );
    }
}

/// Claim 7: lu's moving working set lets every hybrid (and S-COMA) beat
/// CC-NUMA at all pressures.
#[test]
fn lu_hybrids_beat_ccnuma_at_all_pressures() {
    for arch in [Arch::Scoma, Arch::AsComa, Arch::VcNuma, Arch::RNuma] {
        for p in [0.1, 0.5, 0.9] {
            let x = rel(App::Lu, arch, p);
            assert!(
                x < 1.0,
                "lu {} at {p}: {x} should beat CC-NUMA",
                arch.name()
            );
        }
    }
}

/// Claim 8: AS-COMA's initial-allocation advantage over R-NUMA at low
/// pressure is largest on radix (the paper's 37% number).
#[test]
fn ascoma_beats_rnuma_most_on_radix_at_low_pressure() {
    let gains: Vec<(App, f64)> = [App::Radix, App::Fft, App::Ocean]
        .into_iter()
        .map(|app| {
            let a = rel(app, Arch::AsComa, 0.1);
            let r = rel(app, Arch::RNuma, 0.1);
            (app, r / a - 1.0)
        })
        .collect();
    let radix_gain = gains[0].1;
    assert!(
        radix_gain > 0.25,
        "radix gain {radix_gain} should be large (paper: 37%)"
    );
    for (app, g) in &gains[1..] {
        assert!(
            *g < radix_gain,
            "{}: gain {g} should be below radix's {radix_gain}",
            app.name()
        );
    }
}

/// Table 6 shape: radix and barnes relocate (nearly) everything under
/// R-NUMA at 10% pressure; fft and ocean relocate (nearly) nothing.
#[test]
fn table6_relocation_census_shape() {
    use ascoma::experiments::run_table6;
    let cfg = SimConfig::default();
    let hot = run_table6(App::Radix, SizeClass::Default, &cfg);
    assert!(
        hot.fraction > 0.9,
        "radix relocated fraction {} (paper: ~94%)",
        hot.fraction
    );
    let cold = run_table6(App::Fft, SizeClass::Default, &cfg);
    assert!(
        cold.fraction < 0.05,
        "fft relocated fraction {} (paper: <1%)",
        cold.fraction
    );
}
