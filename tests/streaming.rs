//! The live-telemetry contract: streaming snapshots is resultwise
//! invisible.  A run instrumented with a `StreamSink` must return a
//! `RunResult` byte-identical to the uninstrumented path, at any job
//! count, and the per-cell snapshot sequences themselves must be a
//! deterministic function of the cell — identical whether the grid runs
//! serially or fanned across workers.

use ascoma::experiments::{figure_stream_cells, run_cells_streamed, StreamCell, StreamSpec};
use ascoma::machine::{simulate_measured, simulate_measured_streamed, simulate_streamed};
use ascoma::{simulate, Arch, SimConfig};
use ascoma_obs::{Snapshot, StreamEvent};
use ascoma_workloads::{App, SizeClass};
use std::sync::mpsc;

const WINDOW: u64 = 100_000;
const CADENCE: u64 = 200_000;

fn base_cfg() -> SimConfig {
    let mut cfg = SimConfig::at_pressure(0.7);
    cfg.obs_sample_period = 50_000;
    cfg
}

#[test]
fn streamed_run_result_matches_plain() {
    let cfg = base_cfg();
    let trace = App::Em3d.build(SizeClass::Tiny, cfg.geometry.page_bytes());
    let plain = simulate(&trace, Arch::AsComa, &cfg);
    let mut snaps: Vec<Snapshot> = Vec::new();
    let (streamed, registry) =
        simulate_streamed(&trace, Arch::AsComa, &cfg, WINDOW, CADENCE, |s| {
            snaps.push(s)
        });
    assert_eq!(plain, streamed, "streaming must not perturb the run");
    assert!(!snaps.is_empty(), "cadence must produce snapshots");
    assert!(
        snaps.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
        "seq is dense and monotonic"
    );
    assert!(
        snaps.windows(2).all(|w| w[0].cycle <= w[1].cycle),
        "snapshot cycles never go backwards"
    );
    let last = snaps.last().unwrap();
    assert_eq!(last.cycle, streamed.cycles, "final frame is end-of-run");
    assert_eq!(last.events, registry.total_events());
    assert!(last.nodes.iter().any(|n| n.threshold > 0 || n.free > 0));
}

#[test]
fn measured_streamed_matches_measured() {
    let cfg = base_cfg();
    let trace = App::Radix.build(SizeClass::Tiny, cfg.geometry.page_bytes());
    let (r_off, ev_off, reg_off) = simulate_measured(&trace, Arch::AsComa, &cfg, WINDOW);
    let mut snaps = 0u64;
    let (r_on, ev_on, reg_on) =
        simulate_measured_streamed(&trace, Arch::AsComa, &cfg, WINDOW, CADENCE, |_| snaps += 1);
    assert_eq!(r_off, r_on, "result incl. obs + metrics digests");
    assert_eq!(ev_off, ev_on, "recorded event streams");
    assert_eq!(reg_off.digest(), reg_on.digest(), "online == offline fold");
    assert!(snaps > 0);
}

fn tiny_grid(cfg: &SimConfig) -> Vec<ascoma_workloads::trace::Trace> {
    vec![
        App::Em3d.build(SizeClass::Tiny, cfg.geometry.page_bytes()),
        App::Radix.build(SizeClass::Tiny, cfg.geometry.page_bytes()),
    ]
}

#[test]
fn grid_results_identical_with_streaming_on_or_off_at_any_job_count() {
    let cfg = base_cfg();
    let traces = tiny_grid(&cfg);
    let cells = figure_stream_cells(&traces, &[0.1, 0.9], &cfg);
    let reference = run_cells_streamed(&cells, &cfg, 1, None);
    for jobs in [1usize, 4] {
        let (tx, rx) = mpsc::channel();
        let spec = StreamSpec::new(tx, CADENCE, WINDOW);
        let streamed = run_cells_streamed(&cells, &cfg, jobs, Some(&spec));
        drop(spec);
        assert_eq!(reference, streamed, "jobs={jobs}");
        assert!(rx.try_iter().count() > 0, "stream was fed");
        let plain = run_cells_streamed(&cells, &cfg, jobs, None);
        assert_eq!(reference, plain, "jobs={jobs} uninstrumented");
    }
}

/// Collect the full stream for one sweep configuration.
fn stream_of(cells: &[StreamCell<'_>], cfg: &SimConfig, jobs: usize) -> Vec<StreamEvent> {
    let (tx, rx) = mpsc::channel();
    let spec = StreamSpec::new(tx, CADENCE, WINDOW);
    let _ = run_cells_streamed(cells, cfg, jobs, Some(&spec));
    drop(spec);
    rx.try_iter().collect()
}

#[test]
fn per_cell_snapshot_sequences_are_deterministic_across_job_counts() {
    let cfg = base_cfg();
    let traces = tiny_grid(&cfg);
    let cells = figure_stream_cells(&traces, &[0.5], &cfg);
    let serial = stream_of(&cells, &cfg, 1);
    let parallel = stream_of(&cells, &cfg, 3);

    // Protocol shape: brackets, one start and one done per cell.
    for evs in [&serial, &parallel] {
        assert!(matches!(
            evs.first(),
            Some(StreamEvent::GridStart { cells: n }) if *n == cells.len() as u64
        ));
        assert!(matches!(
            evs.last(),
            Some(StreamEvent::GridDone { cells: n }) if *n == cells.len() as u64
        ));
        for i in 0..cells.len() as u64 {
            let starts = evs
                .iter()
                .filter(|e| matches!(e, StreamEvent::CellStart { cell, .. } if *cell == i))
                .count();
            let dones = evs
                .iter()
                .filter(|e| matches!(e, StreamEvent::CellDone { cell, .. } if *cell == i))
                .count();
            assert_eq!((starts, dones), (1, 1), "cell {i}");
        }
    }

    // Per-cell snapshot subsequences are identical: worker scheduling
    // may interleave cells differently, but each cell's own telemetry
    // is a pure function of the cell.
    let per_cell = |evs: &[StreamEvent], cell: u64| -> Vec<Snapshot> {
        evs.iter()
            .filter_map(|e| match e {
                StreamEvent::Snap { cell: c, snap } if *c == cell => Some(snap.clone()),
                _ => None,
            })
            .collect()
    };
    for i in 0..cells.len() as u64 {
        assert_eq!(per_cell(&serial, i), per_cell(&parallel, i), "cell {i}");
        assert!(!per_cell(&serial, i).is_empty(), "cell {i} streamed");
    }

    // And the reported completion cycles match the actual results.
    let runs = run_cells_streamed(&cells, &cfg, 1, None);
    for ev in &serial {
        if let StreamEvent::CellDone { cell, cycles } = ev {
            assert_eq!(*cycles, runs[*cell as usize].cycles);
        }
    }
}

#[test]
fn marker_only_mode_sends_no_snapshots() {
    let cfg = base_cfg();
    let trace = App::Em3d.build(SizeClass::Tiny, cfg.geometry.page_bytes());
    let cells = vec![StreamCell::new(&trace, Arch::Scoma, 0.5)];
    let (tx, rx) = mpsc::channel();
    let spec = StreamSpec::new(tx, 0, WINDOW);
    let runs = run_cells_streamed(&cells, &cfg, 1, Some(&spec));
    drop(spec);
    let evs: Vec<StreamEvent> = rx.try_iter().collect();
    assert_eq!(runs.len(), 1);
    assert_eq!(
        evs,
        vec![
            StreamEvent::GridStart { cells: 1 },
            StreamEvent::CellStart {
                cell: 0,
                label: cells[0].label.clone(),
            },
            StreamEvent::CellDone {
                cell: 0,
                cycles: runs[0].cycles,
            },
            StreamEvent::GridDone { cells: 1 },
        ]
    );
}
